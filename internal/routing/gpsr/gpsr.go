// Package gpsr implements the paper's baseline: GPSR-style greedy
// geographic forwarding (Karp & Kung) over the 802.11 MAC, with cleartext
// (identity, location) beacons and unicast data transmission guarded by
// RTS/CTS. An optional perimeter-mode recovery (Gabriel-graph
// planarization plus the right-hand rule) implements what the paper
// defers to future work.
//
// This protocol is deliberately privacy-free: every beacon broadcasts the
// sender's identity with its position, and every unicast frame exposes
// link-layer addresses — exactly the exposure surface §2 catalogs.
package gpsr

import (
	"math/rand"
	"strconv"
	"time"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/metrics"
	"anongeo/internal/neighbor"
	"anongeo/internal/routing"
	"anongeo/internal/sim"
	"anongeo/internal/trace"
)

// Beacon is the periodic hello: the sender's real identity and position.
// The sender's MAC address arrives out of band (frame source address).
type Beacon struct {
	ID  anoncrypto.Identity
	Loc geo.Point
	// Junk marks flood-attack beacons for simulator-omniscient accounting
	// (the audit balances junk heard against junk sent). No protocol
	// decision may read it: receivers treat junk beacons like real ones.
	Junk bool
}

// beaconBytes models the beacon size: type (1) + identity (8) +
// location (8) + timestamp (8).
const beaconBytes = 25

// headerBytes models the data header: type (1) + src (8) + dst (8) +
// dst location (8) + packet id (8) + hops/mode (4).
const headerBytes = 37

// Packet is a GPSR data packet. Geocast packets (Geocast true) have no
// destination identity: they terminate at the greedy local maximum
// toward DstLoc, where the router's GeoHandler consumes the payload —
// the primitive the DLM location service rides on.
type Packet struct {
	PktID  uint64
	Src    anoncrypto.Identity
	Dst    anoncrypto.Identity
	DstLoc geo.Point
	Bytes  int // application payload size
	Hops   int

	Geocast bool
	Payload any

	// Perimeter-mode state (zero while greedy).
	Perim     bool
	EntryLoc  geo.Point // where the packet entered perimeter mode (L_p)
	PrevLoc   geo.Point // position of the previous hop, for the right-hand rule
	FirstHop  anoncrypto.Identity
	FirstFrom anoncrypto.Identity
}

// Config parameterizes the router. DefaultConfig matches the NS-2 GPSR
// settings the paper's evaluation inherited.
type Config struct {
	BeaconInterval  time.Duration
	BeaconJitter    float64 // fraction of the interval, uniform ±
	NeighborTTL     sim.Time
	EnablePerimeter bool
	// MaxRouteRetries bounds re-routing after MAC-level send failures
	// (GPSR's MAC feedback: drop the dead neighbor, pick another).
	MaxRouteRetries int

	// BeaconLog, when non-nil, is the run-shared beacon content store
	// all routers' neighbor tables attach to (see neighbor.BeaconLog).
	// Nil gives the router a private log — correct, just without the
	// cross-node deduplication.
	BeaconLog *neighbor.BeaconLog

	// TrustConfig, when non-nil, arms trust-aware relaying: the router
	// keeps per-neighbor forwarding-evidence scores (watchdog overhearing
	// via a promiscuous MAC snoop), runs position-plausibility checks on
	// every beacon, and weights next-hop selection by trust. Nil keeps
	// the untrusted path bit-for-bit (the defense-off parity oracle).
	TrustConfig *neighbor.TrustConfig

	// Trace, when non-nil, records protocol events for debugging.
	Trace *trace.Log
}

// DefaultConfig returns the standard GPSR parameter set: 1.5 s beacons
// (±50% jitter) and a 4.5 s (3 beacons) neighbor timeout.
func DefaultConfig() Config {
	return Config{
		BeaconInterval:  1500 * time.Millisecond,
		BeaconJitter:    0.5,
		NeighborTTL:     sim.Time(4500 * time.Millisecond),
		MaxRouteRetries: 3,
	}
}

// Router is one node's GPSR instance.
type Router struct {
	eng  *sim.Engine
	dcf  *mac.DCF
	cfg  Config
	self anoncrypto.Identity
	pos  func() geo.Point
	rng  *rand.Rand

	table      *neighbor.Table
	col        *metrics.Collector
	deliver    routing.DeliverFunc
	geoHandler func(payload any, payloadBytes int)

	// Fault-injection state (see internal/fault): relayDrop > 0 makes
	// this node an adversarial relay (1 = blackhole, else greyhole
	// probability), muted suppresses beacons, beaconNoise perturbs the
	// advertised position (GPS error), forgedBeacon replaces the
	// advertised position outright (bogus-position injection).
	relayDrop    float64
	muted        bool
	beaconNoise  func(geo.Point) geo.Point
	forgedBeacon func(geo.Point) geo.Point

	// trust, when armed, is this node's view of its neighbors' relaying
	// honesty; watch holds the watchdog deadlines for packets handed to a
	// relay whose onward transmission we expect to overhear.
	trust *neighbor.Trust
	watch map[uint64]*watchdog

	started bool
	stats   Stats
}

// watchdog is one armed forwarding-evidence deadline.
type watchdog struct {
	relay anoncrypto.Identity
	mac   mac.Addr
	ev    *sim.Event
}

// Stats counts router-level events.
type Stats struct {
	BeaconsSent    int
	DataForwarded  int
	DeadEnds       int
	PerimHops      int
	MACFailures    int
	GeocastAccepts int
	// AdversaryDrops counts packets silently eaten while acting as a
	// blackhole/greyhole relay (fault injection). Unlike AGFW, the MAC
	// ACK already succeeded by the time the router drops, so the
	// previous hop believes the packet was delivered — the classic
	// blackhole attack against unicast geographic routing.
	AdversaryDrops int

	// Active-adversary accounting (internal/fault attack kinds). The
	// sent/heard pairs are simulator-omniscient: the audit balances them
	// globally (heard > 0 requires sent > 0).
	BogusBeaconsSent int // beacons whose position a forger displaced
	JunkHellosSent   int // flood-attack beacons originated here
	JunkHellosHeard  int // flood-attack beacons received here
	// Trust-defense accounting (zero whenever the defense is off).
	BeaconsQuarantined int // beacons rejected by plausibility checks
	WatchdogConfirms   int // relays overheard forwarding as promised
	WatchdogTimeouts   int // relays that never produced evidence
	TrustQuarantines   int // quarantine windows opened
	TrustFallbacks     int // selections forced below the trust bar
}

// New creates a router bound to an existing MAC entity. It installs
// itself as the MAC's upper layer. col may be shared across nodes.
func New(eng *sim.Engine, dcf *mac.DCF, self anoncrypto.Identity, pos func() geo.Point, cfg Config, col *metrics.Collector, deliver routing.DeliverFunc, rng *rand.Rand) *Router {
	table := neighbor.NewTable(cfg.NeighborTTL)
	if cfg.BeaconLog != nil {
		table = neighbor.NewSharedTable(cfg.NeighborTTL, cfg.BeaconLog)
	}
	r := &Router{
		eng:     eng,
		dcf:     dcf,
		cfg:     cfg,
		self:    self,
		pos:     pos,
		rng:     rng,
		table:   table,
		col:     col,
		deliver: deliver,
	}
	if cfg.TrustConfig != nil {
		r.trust = neighbor.NewTrust(*cfg.TrustConfig)
		r.watch = make(map[uint64]*watchdog)
		// The watchdog needs to overhear frames addressed to others;
		// installed only when the defense is on, so the defense-off MAC
		// path is untouched.
		dcf.SetSnoop(r.onSnoop)
	}
	dcf.SetDeliver(r.onDeliver)
	return r
}

// Trust exposes the trust table (nil when the defense is off).
func (r *Router) Trust() *neighbor.Trust { return r.trust }

// Table exposes the neighbor table for tests and diagnostics.
func (r *Router) Table() *neighbor.Table { return r.table }

// Stats returns a snapshot of router counters.
func (r *Router) Stats() Stats {
	s := r.stats
	if r.trust != nil {
		s.TrustQuarantines = r.trust.Quarantines
		s.TrustFallbacks = r.trust.Fallbacks
	}
	return s
}

// SetRelayDrop turns the node into an adversarial relay: packets routed
// through it are silently eaten with probability p (p >= 1 is a
// blackhole, 0 disables). Beaconing continues normally, so neighbors
// keep choosing it; packets addressed to the node itself still deliver.
func (r *Router) SetRelayDrop(p float64) { r.relayDrop = p }

// SetMute stops beaconing while the node keeps moving and forwarding —
// it fades out of neighbor tables within NeighborTTL.
func (r *Router) SetMute(m bool) { r.muted = m }

// SetBeaconNoise perturbs the position beacons advertise (GPS error
// injection); the radio still uses the true position. nil disables.
func (r *Router) SetBeaconNoise(f func(geo.Point) geo.Point) { r.beaconNoise = f }

// SetForgedBeacon turns the node into a position forger: advertised
// positions are replaced by f's output (bogus-position injection,
// composable with GPS error). nil restores truth.
func (r *Router) SetForgedBeacon(f func(geo.Point) geo.Point) { r.forgedBeacon = f }

// SendJunkHello broadcasts one beacon under a forged identity derived
// from nonce, advertising loc — the flood attack's per-tick payload.
// bytes <= 0 uses the protocol's own beacon size.
func (r *Router) SendJunkHello(nonce uint64, loc geo.Point, bytes int) {
	if bytes <= 0 {
		bytes = beaconBytes
	}
	id := anoncrypto.Identity("junk-" + strconv.FormatUint(nonce, 16))
	r.stats.JunkHellosSent++
	r.dcf.Send(mac.Broadcast, &Beacon{ID: id, Loc: loc, Junk: true}, bytes, nil)
}

// advertisedPos is the position beacons carry: the true position unless
// GPS-error injection or position forgery is active. Forgery applies
// after noise, so a forged lure is advertised exactly.
func (r *Router) advertisedPos() geo.Point {
	p := r.pos()
	if r.beaconNoise != nil {
		p = r.beaconNoise(p)
	}
	if r.forgedBeacon != nil {
		if fp := r.forgedBeacon(p); fp != p {
			r.stats.BogusBeaconsSent++
			p = fp
		}
	}
	return p
}

// SetGeoHandler installs the consumer of terminated geocast packets
// (the location-service server role).
func (r *Router) SetGeoHandler(h func(payload any, payloadBytes int)) { r.geoHandler = h }

// SendGeocast routes payload toward target; the node at the greedy local
// maximum consumes it via its GeoHandler. Geocasts are control-plane
// traffic: not recorded in the metrics collector.
func (r *Router) SendGeocast(target geo.Point, payload any, payloadBytes int, pktID uint64) {
	p := &Packet{PktID: pktID, Src: r.self, DstLoc: target, Bytes: payloadBytes, Geocast: true, Payload: payload}
	r.route(p, 0)
}

// acceptGeocast terminates a geocast at this node.
func (r *Router) acceptGeocast(p *Packet) {
	r.stats.GeocastAccepts++
	if r.geoHandler != nil {
		r.geoHandler(p.Payload, p.Bytes)
	}
}

// Start begins beaconing. Safe to call once.
func (r *Router) Start() {
	if r.started {
		return
	}
	r.started = true
	r.scheduleBeacon(true)
}

// scheduleBeacon arms the next (jittered) beacon.
func (r *Router) scheduleBeacon(first bool) {
	iv := r.cfg.BeaconInterval
	jit := time.Duration((r.rng.Float64()*2 - 1) * r.cfg.BeaconJitter * float64(iv))
	d := iv + jit
	if first {
		// Desynchronize node start-up across the network.
		d = time.Duration(r.rng.Float64() * float64(iv))
	}
	r.eng.Schedule(d, func() {
		r.sendBeacon()
		r.scheduleBeacon(false)
	})
}

// sendBeacon broadcasts ⟨id, loc⟩ and garbage-collects the table.
func (r *Router) sendBeacon() {
	if r.muted {
		return
	}
	r.stats.BeaconsSent++
	r.table.Expire(r.eng.Now())
	if r.trust != nil {
		// Junk-flood identities are one-shot; without garbage collection
		// their trust state grows with run length.
		r.trust.Expire(r.eng.Now(), 4*r.cfg.NeighborTTL)
	}
	r.dcf.Send(mac.Broadcast, &Beacon{ID: r.self, Loc: r.advertisedPos()}, beaconBytes, nil)
}

// SendData originates an application packet toward dst, whose position
// the caller resolved via a Locator. pktID must be globally unique.
func (r *Router) SendData(dst anoncrypto.Identity, dstLoc geo.Point, payloadBytes int, pktID uint64) {
	r.Originate(dst, dstLoc, payloadBytes, pktID, true)
}

// Originate is SendData with control over metrics recording; location-
// service callers stamp PacketSent at request time themselves.
func (r *Router) Originate(dst anoncrypto.Identity, dstLoc geo.Point, payloadBytes int, pktID uint64, record bool) {
	if record {
		r.col.PacketSent(pktID, r.eng.Now())
	}
	p := &Packet{PktID: pktID, Src: r.self, Dst: dst, DstLoc: dstLoc, Bytes: payloadBytes}
	if dst == r.self {
		r.deliverLocal(p)
		return
	}
	r.route(p, 0)
}

// tracef records a protocol event when tracing is enabled.
func (r *Router) tracef(kind, format string, args ...any) {
	if r.cfg.Trace.Enabled() {
		r.cfg.Trace.Addf(r.eng.Now(), string(r.self), kind, format, args...)
	}
}

// deliverLocal hands a packet that reached its destination upward.
func (r *Router) deliverLocal(p *Packet) {
	r.tracef("accept", "pkt %d after %d hops", p.PktID, p.Hops)
	r.col.PacketDelivered(p.PktID, r.eng.Now(), p.Hops)
	if r.deliver != nil {
		r.deliver(p.PktID, p.Hops)
	}
}

// route makes one forwarding decision for p. retriesLeft counts MAC
// failure re-routes already consumed for this packet at this node.
func (r *Router) route(p *Packet, retried int) {
	if p.Hops >= routing.MaxHops {
		if p.Geocast {
			r.col.Drop("hop-limit")
		} else {
			r.col.DropPacket(p.PktID, "hop-limit")
		}
		return
	}
	now := r.eng.Now()
	here := r.pos()

	// If the destination itself is a live neighbor, forward straight to
	// it: the carried loc_d may be stale, but the beacon is fresh. (AGFW
	// cannot take this shortcut — neighbors are pseudonymous — which is
	// why it has the last-hop trapdoor broadcast instead.)
	if !p.Geocast {
		if e, ok := r.table.Get(p.Dst, now); ok {
			r.transmit(p, e, retried)
			return
		}
	}

	if p.Perim {
		// Leave perimeter mode as soon as greedy would make progress
		// relative to where the packet got stuck.
		if here.Dist2(p.DstLoc) < p.EntryLoc.Dist2(p.DstLoc) {
			p.Perim = false
		}
	}
	if !p.Perim {
		if e, ok := r.table.ClosestTrusted(p.DstLoc, here, now, r.trust); ok {
			r.transmit(p, e, retried)
			return
		}
		if p.Geocast {
			// Greedy local maximum: this node serves the target point.
			r.acceptGeocast(p)
			return
		}
		if !r.cfg.EnablePerimeter {
			r.stats.DeadEnds++
			r.tracef("stop", "pkt %d dead end toward %s", p.PktID, p.DstLoc)
			r.col.DropPacket(p.PktID, "dead-end")
			return
		}
		// Enter perimeter mode.
		q := *p
		q.Perim = true
		q.EntryLoc = here
		q.PrevLoc = p.DstLoc // first edge taken CCW from the line to dest
		q.FirstHop = ""
		q.FirstFrom = r.self
		p = &q
	}
	e, ok := r.perimeterNext(p, here, now)
	if !ok {
		r.stats.DeadEnds++
		r.col.DropPacket(p.PktID, "perimeter-dead-end")
		return
	}
	if p.FirstHop == "" {
		p.FirstHop = e.ID
	} else if p.FirstFrom == r.self && p.FirstHop == e.ID {
		// Completed a full tour of the face without progress.
		r.col.DropPacket(p.PktID, "perimeter-loop")
		return
	}
	r.stats.PerimHops++
	r.transmit(p, e, retried)
}

// transmit unicasts p to the chosen neighbor, with GPSR's MAC feedback:
// on failure, evict the neighbor and re-route.
func (r *Router) transmit(p *Packet, e neighbor.Entry, retried int) {
	q := *p
	q.PrevLoc = r.pos()
	r.stats.DataForwarded++
	r.tracef("fwd", "pkt %d -> %s", p.PktID, e.ID)
	r.dcf.Send(e.MAC, &q, headerBytes+p.Bytes, func(ok bool) {
		if ok {
			r.armWatchdog(p, e)
			return
		}
		r.stats.MACFailures++
		r.table.Remove(e.ID)
		if retried >= r.cfg.MaxRouteRetries {
			if p.Geocast {
				r.col.Drop("mac-retry-exhausted")
			} else {
				r.col.DropPacket(p.PktID, "mac-retry-exhausted")
			}
			return
		}
		r.route(p, retried+1)
	})
}

// armWatchdog starts the forwarding-evidence deadline for a packet the
// MAC just delivered to relay e: the snoop must overhear e's onward
// unicast of the same packet within EvidenceTimeout, or the relay is
// recorded as failing (Marti-style watchdog). No deadline is armed when
// the relay is the destination or a geocast terminal — there is
// legitimately nothing to overhear.
func (r *Router) armWatchdog(p *Packet, e neighbor.Entry) {
	if r.trust == nil || p.Geocast || e.ID == p.Dst {
		return
	}
	if _, ok := r.watch[p.PktID]; ok {
		return // already watching an earlier transmission of this packet
	}
	w := &watchdog{relay: e.ID, mac: e.MAC}
	r.watch[p.PktID] = w
	id := p.PktID
	w.ev = r.eng.Schedule(r.trust.Config().EvidenceTimeout, func() {
		if r.watch[id] != w {
			return
		}
		delete(r.watch, id)
		r.stats.WatchdogTimeouts++
		r.trust.Record(string(w.relay), false, r.eng.Now())
	})
}

// onSnoop receives overheard unicast data frames (trust mode only) and
// settles matching watchdog deadlines: the watched relay retransmitting
// the watched packet onward is positive forwarding evidence.
func (r *Router) onSnoop(src, _ mac.Addr, payload any) {
	p, ok := payload.(*Packet)
	if !ok {
		return
	}
	w, ok := r.watch[p.PktID]
	if !ok || src != w.mac {
		return
	}
	w.ev.Cancel()
	delete(r.watch, p.PktID)
	r.stats.WatchdogConfirms++
	r.trust.Record(string(w.relay), true, r.eng.Now())
}

// onDeliver is the MAC upper-layer callback.
func (r *Router) onDeliver(src mac.Addr, payload any, _ int) {
	switch m := payload.(type) {
	case *Beacon:
		if m.Junk {
			r.stats.JunkHellosHeard++
		}
		if r.trust != nil && !r.trust.CheckBeacon(string(m.ID), m.Loc, r.pos(), r.eng.Now()) {
			// Implausible advertised position: quarantine the sender and
			// keep the claim out of the neighbor table.
			r.stats.BeaconsQuarantined++
			return
		}
		r.table.Update(m.ID, src, m.Loc, r.eng.Now())
	case *Packet:
		q := *m
		q.Hops++
		if q.Dst == r.self {
			r.deliverLocal(&q)
			return
		}
		if r.relayDrop > 0 && (r.relayDrop >= 1 || r.rng.Float64() < r.relayDrop) {
			// Adversarial relay: the MAC already acknowledged the frame,
			// so the previous hop believes it was forwarded. Eat it.
			r.stats.AdversaryDrops++
			r.col.Drop("adversary-drop")
			return
		}
		r.route(&q, 0)
	}
}

// perimeterNext applies the right-hand rule on the Gabriel-planarized
// neighbor graph: take the first edge counterclockwise from the edge
// (here → PrevLoc).
func (r *Router) perimeterNext(p *Packet, here geo.Point, now sim.Time) (neighbor.Entry, bool) {
	planar := r.planarNeighbors(here, now)
	if len(planar) == 0 {
		return neighbor.Entry{}, false
	}
	ref := here.Angle(p.PrevLoc)
	best := neighbor.Entry{}
	bestDelta := -1.0
	for _, e := range planar {
		a := here.Angle(e.Loc)
		// Counterclockwise sweep angle from the reference edge.
		delta := a - ref
		for delta <= 1e-12 {
			delta += 2 * 3.141592653589793
		}
		if bestDelta < 0 || delta < bestDelta {
			best, bestDelta = e, delta
		}
	}
	return best, bestDelta >= 0
}

// planarNeighbors filters the live neighbor set down to Gabriel-graph
// edges: keep (self, v) iff no witness w lies strictly inside the circle
// with diameter self–v.
func (r *Router) planarNeighbors(here geo.Point, now sim.Time) []neighbor.Entry {
	all := r.table.Entries(now)
	var out []neighbor.Entry
	for _, v := range all {
		mid := here.Lerp(v.Loc, 0.5)
		rad2 := here.Dist2(v.Loc) / 4
		keep := true
		for _, w := range all {
			if w.ID == v.ID {
				continue
			}
			if w.Loc.Dist2(mid) < rad2-1e-9 {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, v)
		}
	}
	return out
}

package gpsr

import (
	"testing"
	"time"

	"anongeo/internal/geo"
)

func TestGeocastReachesServingNode(t *testing.T) {
	tb := newTestBed(21)
	tb.line(5)
	var served []int
	for i, r := range tb.routers {
		i, r := i, r
		r.SetGeoHandler(func(p any, bytes int) {
			if p != "update" || bytes != 40 {
				t.Errorf("payload = %v/%d", p, bytes)
			}
			served = append(served, i)
		})
	}
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	tb.eng.Schedule(0, func() {
		tb.routers[0].SendGeocast(geo.Pt(850, 0), "update", 40, 1<<40)
	})
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(served) != 1 || served[0] != 4 {
		t.Fatalf("served = %v, want [4]", served)
	}
}

func TestGeocastSelfServeAtLocalMax(t *testing.T) {
	tb := newTestBed(22)
	tb.line(2)
	var got int
	tb.routers[1].SetGeoHandler(func(any, int) { got++ })
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	tb.eng.Schedule(0, func() {
		tb.routers[1].SendGeocast(geo.Pt(500, 0), "x", 8, 1<<40)
	})
	if err := tb.eng.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("self-served geocasts = %d", got)
	}
}

func TestGeocastSurvivesMACFailure(t *testing.T) {
	// The geocast should re-route around a dead relay like data does.
	tb := newTestBed(23)
	tb.addStatic(0, 0)
	tb.addNode(deadAfterBeacons(), DefaultConfig())
	tb.addStatic(180, 100)
	tb.addStatic(400, 0)
	var got int
	tb.routers[3].SetGeoHandler(func(any, int) { got++ })
	tb.eng.Schedule(5100*time.Millisecond, func() {
		tb.routers[0].SendGeocast(geo.Pt(420, 0), "q", 8, 1<<40)
	})
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("geocast lost after MAC failure (got %d)", got)
	}
}

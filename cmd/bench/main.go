// bench measures the simulator's wall-clock throughput on the Figure 1
// workload, running every cell twice in the same process — once on the
// spatial-index fast path and once on the brute-force (pre-index) hot
// path — verifying the two produce bit-for-bit identical results, and
// writing the timings to BENCH_core.json.
//
//	go run ./cmd/bench                 # default cells, writes BENCH_core.json
//	go run ./cmd/bench -out my.json    # alternate output path
//	go run ./cmd/bench -quick          # N=50 only, for smoke runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"time"

	"anongeo/internal/core"
	"anongeo/internal/geo"
	"anongeo/internal/neighbor"
)

// Cell is one benchmark measurement: a Figure 1(a) configuration timed
// on both hot paths.
type Cell struct {
	Figure   string  `json:"figure"`
	Protocol string  `json:"protocol"`
	Nodes    int     `json:"nodes"`
	Seed     int64   `json:"seed"`
	SimSecs  float64 `json:"sim_seconds"`

	FastWallS  float64 `json:"fast_wall_s"`
	BruteWallS float64 `json:"brute_wall_s"`
	// Speedup is brute wall time over fast wall time.
	Speedup float64 `json:"speedup"`
	// SimPerWallFast is simulated seconds per wall-clock second on the
	// fast path (and likewise for the brute path).
	SimPerWallFast  float64 `json:"sim_per_wall_fast"`
	SimPerWallBrute float64 `json:"sim_per_wall_brute"`

	// Parity records that the two runs' full Result structs were
	// bit-for-bit identical; the program aborts if any cell disagrees.
	Parity bool    `json:"parity"`
	PDF    float64 `json:"pdf"`
	// BruteSkipped marks scale cells measured on the fast path only:
	// the O(N²) brute path is prohibitive there, which is the point of
	// the spatial index. Brute timings and parity are absent for them.
	BruteSkipped bool `json:"brute_skipped,omitempty"`
}

// Report is the BENCH_core.json document.
type Report struct {
	Schema    string `json:"schema"`
	CreatedAt string `json:"created_at"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Cells     []Cell `json:"cells"`
}

func fig1aConfig(proto core.Protocol, nodes int, seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Protocol = proto
	cfg.Nodes = nodes
	cfg.Seed = seed
	cfg.Area = geo.NewRect(1500, 300)
	cfg.Duration = 60 * time.Second
	cfg.PacketInterval = 300 * time.Millisecond
	cfg.PayloadBytes = 64
	cfg.Policy = neighbor.PolicyWeighted
	cfg.ReachFilter = true
	return cfg
}

// timePair times one cell on both hot paths: a discarded warmup of each
// (so neither pays first-touch allocator costs), then reps timed runs
// with the two paths interleaved — background load then lands on both
// sides rather than corrupting one path's whole block — reporting each
// side's minimum, the standard low-noise estimator. A forced collection
// before every timed run keeps one run's garbage from being billed to
// the next.
func timePair(fastCfg, bruteCfg core.Config, reps int) (fast, brute core.Result, fastS, bruteS float64, err error) {
	if fast, err = core.Run(fastCfg); err != nil {
		return
	}
	if brute, err = core.Run(bruteCfg); err != nil {
		return
	}
	fastS, bruteS = math.Inf(1), math.Inf(1)
	for r := 0; r < reps; r++ {
		runtime.GC()
		start := time.Now()
		if fast, err = core.Run(fastCfg); err != nil {
			return
		}
		if s := time.Since(start).Seconds(); s < fastS {
			fastS = s
		}
		runtime.GC()
		start = time.Now()
		if brute, err = core.Run(bruteCfg); err != nil {
			return
		}
		if s := time.Since(start).Seconds(); s < bruteS {
			bruteS = s
		}
	}
	return
}

// timeFast times one cell on the fast path alone: a discarded warmup,
// then reps timed runs, reporting the minimum like timePair.
func timeFast(cfg core.Config, reps int) (res core.Result, wallS float64, err error) {
	if res, err = core.Run(cfg); err != nil {
		return
	}
	wallS = math.Inf(1)
	for r := 0; r < reps; r++ {
		runtime.GC()
		start := time.Now()
		if res, err = core.Run(cfg); err != nil {
			return
		}
		if s := time.Since(start).Seconds(); s < wallS {
			wallS = s
		}
	}
	return
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output path")
	quick := flag.Bool("quick", false, "run only the N=50 cells")
	reps := flag.Int("reps", 5, "timed repetitions per cell and path (minimum is reported)")
	flag.Parse()

	densities := []int{50, 112, 150}
	if *quick {
		densities = []int{50}
	}
	protos := []core.Protocol{core.ProtoGPSR, core.ProtoAGFW}
	const seed = 1

	rep := Report{
		Schema:    "anongeo-bench/1",
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	for _, proto := range protos {
		for _, n := range densities {
			fastCfg := fig1aConfig(proto, n, seed)
			bruteCfg := fastCfg
			bruteCfg.BruteForceRadio = true

			fast, brute, fastS, bruteS, err := timePair(fastCfg, bruteCfg, *reps)
			if err != nil {
				fatal(err)
			}
			if !reflect.DeepEqual(fast, brute) {
				fatal(fmt.Errorf("parity violation: %s N=%d fast and brute results differ", proto, n))
			}
			simS := fastCfg.Duration.Seconds()
			c := Cell{
				Figure:          "1a",
				Protocol:        proto.String(),
				Nodes:           n,
				Seed:            seed,
				SimSecs:         simS,
				FastWallS:       round(fastS),
				BruteWallS:      round(bruteS),
				Speedup:         round(bruteS / fastS),
				SimPerWallFast:  round(simS / fastS),
				SimPerWallBrute: round(simS / bruteS),
				Parity:          true,
				PDF:             round(fast.Summary.DeliveryFraction),
			}
			rep.Cells = append(rep.Cells, c)
			fmt.Printf("%-12s N=%-4d fast %7.3fs  brute %7.3fs  speedup %5.2f×  (%6.0f sim-s/wall-s, pdf %.3f)\n",
				proto, n, c.FastWallS, c.BruteWallS, c.Speedup, c.SimPerWallFast, c.PDF)
		}
	}

	// Scale cells: N=1000 on the fast path only. The brute-force
	// pairing is skipped — at 1000 nodes the O(N²) radio path is the
	// problem the spatial index exists to avoid — so these cells track
	// absolute fast-path throughput at an order of magnitude beyond the
	// paper's densities (e.g. for the distributed coordinator's
	// capacity planning).
	if !*quick {
		scaleReps := *reps
		if scaleReps > 2 {
			scaleReps = 2
		}
		for _, proto := range protos {
			cfg := fig1aConfig(proto, 1000, seed)
			res, wallS, err := timeFast(cfg, scaleReps)
			if err != nil {
				fatal(err)
			}
			simS := cfg.Duration.Seconds()
			c := Cell{
				Figure:         "1a-scale",
				Protocol:       proto.String(),
				Nodes:          1000,
				Seed:           seed,
				SimSecs:        simS,
				FastWallS:      round(wallS),
				SimPerWallFast: round(simS / wallS),
				PDF:            round(res.Summary.DeliveryFraction),
				BruteSkipped:   true,
			}
			rep.Cells = append(rep.Cells, c)
			fmt.Printf("%-12s N=%-4d fast %7.3fs  brute  skipped  (%6.0f sim-s/wall-s, pdf %.3f)\n",
				proto, 1000, c.FastWallS, c.SimPerWallFast, c.PDF)
		}
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// round trims timings to a stable number of digits so the committed
// report diffs cleanly.
func round(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// bench measures the simulator's wall-clock throughput on the Figure 1
// workload and its large-N scaling cells, writing the timings to
// BENCH_core.json.
//
// Small cells (N=50..150) run twice in the same process — once on the
// spatial-index fast path and once on the brute-force (pre-index) hot
// path — verifying the two produce bit-for-bit identical results. Scale
// cells (N=1000 at Figure-1 density, N=10000 at constant per-node area)
// run on the fast path only: the O(N²) brute oracle is prohibitive
// there by design.
//
//	go run ./cmd/bench                        # default cells, writes BENCH_core.json
//	go run ./cmd/bench -quick                 # N=50 only, for smoke runs
//	go run ./cmd/bench -cells small,scale1k   # select cell groups
//	go run ./cmd/bench -gate BENCH_core.json  # perf-regression gate (CI)
//	go run ./cmd/bench -cpuprofile cpu.pprof -cells scale1k
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"anongeo/internal/core"
	"anongeo/internal/geo"
	"anongeo/internal/lbs"
	"anongeo/internal/neighbor"
)

// Cell is one benchmark measurement: a configuration timed on the fast
// path and, for small cells, on the brute-force oracle too.
type Cell struct {
	Figure   string  `json:"figure"`
	Protocol string  `json:"protocol"`
	Nodes    int     `json:"nodes"`
	Seed     int64   `json:"seed"`
	SimSecs  float64 `json:"sim_seconds"`
	// AreaW/AreaH record the arena so scale cells (which grow the arena
	// to hold per-node density constant) stay comparable across PRs.
	AreaW float64 `json:"area_w"`
	AreaH float64 `json:"area_h"`

	FastWallS  float64 `json:"fast_wall_s"`
	BruteWallS float64 `json:"brute_wall_s,omitempty"`
	// Speedup is brute wall time over fast wall time.
	Speedup float64 `json:"speedup,omitempty"`
	// SimPerWallFast is simulated seconds per wall-clock second on the
	// fast path (and likewise for the brute path).
	SimPerWallFast  float64 `json:"sim_per_wall_fast"`
	SimPerWallBrute float64 `json:"sim_per_wall_brute,omitempty"`

	// Parity records that the two runs' full Result structs were
	// bit-for-bit identical; the program aborts if any cell disagrees.
	Parity bool    `json:"parity"`
	PDF    float64 `json:"pdf"`
	// BruteSkipped marks scale cells measured on the fast path only:
	// the O(N²) brute path is prohibitive there, which is the point of
	// the spatial index. Brute timings and parity are absent for them.
	BruteSkipped bool `json:"brute_skipped,omitempty"`
}

// Report is the BENCH_core.json document. Schema 2 adds gomaxprocs and
// scheduler (baselines are only comparable when both match), the arena
// fields, and the N=10000 constant-density scale cells.
type Report struct {
	Schema    string `json:"schema"`
	CreatedAt string `json:"created_at"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS is the scheduler width the run executed under; the
	// simulator is single-threaded per run, but GC assist and the Go
	// runtime background work still scale with it.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Scheduler is the event-queue implementation timed: "calendar"
	// (default) or "heap" (the parity oracle, via -scheduler heap).
	Scheduler string `json:"scheduler"`
	Cells     []Cell `json:"cells"`
}

func fig1aConfig(proto core.Protocol, nodes int, seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Protocol = proto
	cfg.Nodes = nodes
	cfg.Seed = seed
	cfg.Area = geo.NewRect(1500, 300)
	cfg.Duration = 60 * time.Second
	cfg.PacketInterval = 300 * time.Millisecond
	cfg.PayloadBytes = 64
	cfg.Policy = neighbor.PolicyWeighted
	cfg.ReachFilter = true
	return cfg
}

// scaleConfig is the constant-density scaling cell: the Figure 1 arena
// grown by sqrt(N/50) per axis so each node keeps the paper's ~9000 m²,
// which is how fleet size — not interference density — scales.
func scaleConfig(proto core.Protocol, nodes int, seed int64) core.Config {
	cfg := fig1aConfig(proto, nodes, seed)
	f := math.Sqrt(float64(nodes) / 50.0)
	cfg.Area = geo.NewRect(round2(1500*f), round2(300*f))
	return cfg
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// timePair times one cell on both hot paths: a discarded warmup of each
// (so neither pays first-touch allocator costs), then reps timed runs
// with the two paths interleaved — background load then lands on both
// sides rather than corrupting one path's whole block — reporting each
// side's minimum, the standard low-noise estimator. A forced collection
// before every timed run keeps one run's garbage from being billed to
// the next.
func timePair(fastCfg, bruteCfg core.Config, reps int) (fast, brute core.Result, fastS, bruteS float64, err error) {
	if fast, err = core.Run(fastCfg); err != nil {
		return
	}
	if brute, err = core.Run(bruteCfg); err != nil {
		return
	}
	fastS, bruteS = math.Inf(1), math.Inf(1)
	for r := 0; r < reps; r++ {
		runtime.GC()
		start := time.Now()
		if fast, err = core.Run(fastCfg); err != nil {
			return
		}
		if s := time.Since(start).Seconds(); s < fastS {
			fastS = s
		}
		runtime.GC()
		start = time.Now()
		if brute, err = core.Run(bruteCfg); err != nil {
			return
		}
		if s := time.Since(start).Seconds(); s < bruteS {
			bruteS = s
		}
	}
	return
}

// timeFast times one cell on the fast path alone: a discarded warmup,
// then reps timed runs, reporting the minimum like timePair. With
// warmup false the first (cold) run is the measurement — for cells so
// large that a second run doubles total bench time for little noise
// reduction.
func timeFast(cfg core.Config, reps int, warmup bool) (res core.Result, wallS float64, err error) {
	wallS = math.Inf(1)
	if warmup {
		if res, err = core.Run(cfg); err != nil {
			return
		}
	}
	for r := 0; r < reps; r++ {
		runtime.GC()
		start := time.Now()
		if res, err = core.Run(cfg); err != nil {
			return
		}
		if s := time.Since(start).Seconds(); s < wallS {
			wallS = s
		}
	}
	return
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output path")
	quick := flag.Bool("quick", false, "run only the N=50 small cells")
	cells := flag.String("cells", "small,scale1k,scale10k,lbs", "comma-separated cell groups: small | scale1k | scale10k | lbs")
	reps := flag.Int("reps", 5, "timed repetitions per cell and path (minimum is reported)")
	scheduler := flag.String("scheduler", "calendar", "event scheduler to time: calendar | heap")
	gatePath := flag.String("gate", "", "baseline BENCH_core.json: compare sim_per_wall_fast per cell and fail on regression beyond -gate-threshold")
	gateThreshold := flag.Float64("gate-threshold", 0.15, "fractional throughput loss tolerated by -gate")
	handicap := flag.Float64("handicap", 1, "deflate measured throughput by this factor in the -gate comparison only (gate self-test)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole bench run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	groups := map[string]bool{}
	for _, g := range strings.Split(*cells, ",") {
		groups[strings.TrimSpace(g)] = true
	}
	if *quick {
		groups = map[string]bool{"small": true}
	}
	useHeap := false
	switch *scheduler {
	case "calendar":
	case "heap":
		useHeap = true
	default:
		fatal(fmt.Errorf("unknown -scheduler %q (want calendar or heap)", *scheduler))
	}

	densities := []int{50, 112, 150}
	if *quick {
		densities = []int{50}
	}
	protos := []core.Protocol{core.ProtoGPSR, core.ProtoAGFW}
	const seed = 1

	rep := Report{
		Schema:     "anongeo-bench/2",
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scheduler:  *scheduler,
	}

	if groups["small"] {
		for _, proto := range protos {
			for _, n := range densities {
				fastCfg := fig1aConfig(proto, n, seed)
				fastCfg.HeapScheduler = useHeap
				bruteCfg := fastCfg
				bruteCfg.BruteForceRadio = true

				fast, brute, fastS, bruteS, err := timePair(fastCfg, bruteCfg, *reps)
				if err != nil {
					fatal(err)
				}
				if !reflect.DeepEqual(fast, brute) {
					fatal(fmt.Errorf("parity violation: %s N=%d fast and brute results differ", proto, n))
				}
				simS := fastCfg.Duration.Seconds()
				c := Cell{
					Figure:          "1a",
					Protocol:        proto.String(),
					Nodes:           n,
					Seed:            seed,
					SimSecs:         simS,
					AreaW:           fastCfg.Area.Width(),
					AreaH:           fastCfg.Area.Height(),
					FastWallS:       round(fastS),
					BruteWallS:      round(bruteS),
					Speedup:         round(bruteS / fastS),
					SimPerWallFast:  round(simS / fastS),
					SimPerWallBrute: round(simS / bruteS),
					Parity:          true,
					PDF:             round(fast.Summary.DeliveryFraction),
				}
				rep.Cells = append(rep.Cells, c)
				fmt.Printf("%-12s N=%-5d fast %7.3fs  brute %7.3fs  speedup %5.2f×  (%6.0f sim-s/wall-s, pdf %.3f)\n",
					proto, n, c.FastWallS, c.BruteWallS, c.Speedup, c.SimPerWallFast, c.PDF)
			}
		}
	}

	// Scale cells, fast path only: at these N the O(N²) brute path is
	// the problem the spatial index exists to avoid, so the brute
	// pairing (and with it in-process parity) is skipped by design.
	// scale1k keeps the Figure-1 arena — 20× the paper's density, an
	// interference stress test. scale10k grows the arena to hold
	// density constant — a fleet-size stress test.
	type scaleCell struct {
		group  string
		figure string
		proto  core.Protocol
		nodes  int
		cfg    func() core.Config
		reps   int
		warmup bool
	}
	var scales []scaleCell
	if groups["scale1k"] {
		for _, proto := range protos {
			p := proto
			scales = append(scales, scaleCell{
				group: "scale1k", figure: "1a-scale", proto: p, nodes: 1000,
				cfg:    func() core.Config { return fig1aConfig(p, 1000, seed) },
				reps:   min(*reps, 3),
				warmup: true,
			})
		}
	}
	if groups["scale10k"] {
		for _, proto := range protos {
			p := proto
			scales = append(scales, scaleCell{
				group: "scale10k", figure: "1a-scale-density", proto: p, nodes: 10000,
				cfg:    func() core.Config { return scaleConfig(p, 10000, seed) },
				reps:   1,
				warmup: false,
			})
		}
	}
	for _, sc := range scales {
		cfg := sc.cfg()
		cfg.HeapScheduler = useHeap
		res, wallS, err := timeFast(cfg, sc.reps, sc.warmup)
		if err != nil {
			fatal(err)
		}
		simS := cfg.Duration.Seconds()
		c := Cell{
			Figure:         sc.figure,
			Protocol:       sc.proto.String(),
			Nodes:          sc.nodes,
			Seed:           seed,
			SimSecs:        simS,
			AreaW:          cfg.Area.Width(),
			AreaH:          cfg.Area.Height(),
			FastWallS:      round(wallS),
			SimPerWallFast: round(simS / wallS),
			PDF:            round(res.Summary.DeliveryFraction),
			BruteSkipped:   true,
		}
		rep.Cells = append(rep.Cells, c)
		fmt.Printf("%-12s N=%-5d fast %7.3fs  brute  skipped  (%6.0f sim-s/wall-s, pdf %.3f)\n",
			sc.proto, sc.nodes, c.FastWallS, c.SimPerWallFast, c.PDF)
	}

	// LBS query-serving throughput, one cell per anonymization backend at
	// its default parameter. Figure "lbs" keys these cells in the gate;
	// Protocol carries the backend, Nodes the client population, and PDF
	// the answered fraction. There is no brute pairing — the workload has
	// one implementation per backend.
	if groups["lbs"] {
		for _, b := range lbs.Backends() {
			cfg := lbsBenchConfig(b)
			res, wallS, err := timeLBS(cfg, min(*reps, 3))
			if err != nil {
				fatal(err)
			}
			simS := cfg.Duration.Seconds()
			c := Cell{
				Figure:         "lbs",
				Protocol:       string(b),
				Nodes:          cfg.Clients,
				Seed:           cfg.Seed,
				SimSecs:        simS,
				AreaW:          cfg.Area.Width(),
				AreaH:          cfg.Area.Height(),
				FastWallS:      round(wallS),
				SimPerWallFast: round(simS / wallS),
				PDF:            round(float64(res.Answered) / float64(res.Queries)),
				BruteSkipped:   true,
			}
			rep.Cells = append(rep.Cells, c)
			fmt.Printf("lbs/%-8s N=%-5d fast %7.3fs  brute  skipped  (%6.0f sim-s/wall-s, answered %.3f)\n",
				b, cfg.Clients, c.FastWallS, c.SimPerWallFast, c.PDF)
		}
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if *gatePath != "" {
		if err := gate(rep, *gatePath, *gateThreshold, *handicap); err != nil {
			fatal(err)
		}
	}
}

// gate compares every measured cell's fast-path throughput against the
// committed baseline and fails on a regression beyond threshold. Cells
// missing from the baseline are skipped (new cells are not regressions);
// a gate that matched nothing fails as vacuous. handicap deflates the
// measured side — a self-test hook proving the gate actually trips.
func gate(rep Report, basePath string, threshold, handicap float64) error {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return fmt.Errorf("gate: %w", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("gate: parsing %s: %w", basePath, err)
	}
	if base.Scheduler != "" && base.Scheduler != rep.Scheduler {
		return fmt.Errorf("gate: baseline timed the %q scheduler, this run timed %q", base.Scheduler, rep.Scheduler)
	}
	type key struct {
		figure, proto string
		nodes         int
		seed          int64
	}
	baseline := map[key]Cell{}
	for _, c := range base.Cells {
		baseline[key{c.Figure, c.Protocol, c.Nodes, c.Seed}] = c
	}
	compared, regressed := 0, 0
	for _, c := range rep.Cells {
		b, ok := baseline[key{c.Figure, c.Protocol, c.Nodes, c.Seed}]
		if !ok || b.SimPerWallFast <= 0 {
			continue
		}
		compared++
		got := c.SimPerWallFast / handicap
		ratio := got / b.SimPerWallFast
		status := "ok"
		if ratio < 1-threshold {
			status = "REGRESSION"
			regressed++
		}
		fmt.Printf("gate: %-12s N=%-5d %8.1f vs baseline %8.1f sim-s/wall-s (%+.1f%%)  %s\n",
			c.Protocol, c.Nodes, got, b.SimPerWallFast, (ratio-1)*100, status)
	}
	if compared == 0 {
		return fmt.Errorf("gate: no measured cell matched the baseline %s — gate is vacuous", basePath)
	}
	if regressed > 0 {
		return fmt.Errorf("gate: %d/%d cells regressed more than %.0f%% vs %s", regressed, compared, threshold*100, basePath)
	}
	fmt.Printf("gate: %d cells within %.0f%% of %s\n", compared, threshold*100, basePath)
	return nil
}

// lbsBenchConfig is one LBS throughput cell: a backend at its default
// parameter over the paper's arena. The cheap backends serve 100k
// queries so their wall times are dominated by the workload rather than
// timer noise; paperals keeps 10k — each of its queries pays an RSA
// decrypt, which is the cost being measured.
func lbsBenchConfig(b lbs.Backend) lbs.Config {
	cfg := lbs.DefaultConfig()
	cfg.Clients = 100
	cfg.Queries = 100000
	cfg.Backend = b
	cfg.K, cfg.GridLevel, cfg.Epsilon, cfg.KeyBits = 0, 0, 0, 0
	switch b {
	case lbs.BackendKAnon:
		cfg.K = 5
	case lbs.BackendGridCloak:
		cfg.GridLevel = 5
	case lbs.BackendGeoInd:
		cfg.Epsilon = 0.02
	case lbs.BackendPaperALS:
		cfg.KeyBits = 512
		cfg.Queries = 10000
	}
	return cfg
}

// timeLBS times one LBS cell like timeFast: a discarded warmup, then
// reps timed runs, reporting the minimum.
func timeLBS(cfg lbs.Config, reps int) (res lbs.Result, wallS float64, err error) {
	wallS = math.Inf(1)
	if res, err = lbs.Run(cfg); err != nil {
		return
	}
	for r := 0; r < reps; r++ {
		runtime.GC()
		start := time.Now()
		if res, err = lbs.Run(cfg); err != nil {
			return
		}
		if s := time.Since(start).Seconds(); s < wallS {
			wallS = s
		}
	}
	return
}

// round trims timings to a stable number of digits so the committed
// report diffs cleanly.
func round(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

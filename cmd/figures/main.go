// Command figures regenerates every figure and ablation experiment in
// EXPERIMENTS.md:
//
//	figures -fig 1a          packet delivery fraction vs density (Figure 1a)
//	figures -fig 1b          end-to-end latency vs density (Figure 1b)
//	figures -fig a1          ring size vs hello bytes and crypto cost
//	figures -fig a2          trapdoor locality (§3.2 efficiency claim)
//	figures -fig a3          ALS indexed vs no-index overhead
//	figures -fig a4          next-hop policy / freshness ablation
//	figures -fig a5          adversary harvest: GPSR vs AGFW vs misconfig
//	figures -fig all         everything
//
// -short runs reduced durations for a quick look; the defaults reproduce
// the paper's 900 s runs. -csv switches 1a/1b output to CSV.
//
// Simulation grids execute on the internal/exp orchestrator: -parallel
// bounds the worker pool (0 = GOMAXPROCS; output is identical at any
// width), -cache memoizes finished cells under .expcache/ so re-running
// after an unrelated edit is near-instant, and -progress streams run
// telemetry to stderr.
//
// With -server the density sweeps (1a/1b) run on an agrsimd daemon —
// a single worker or a distributed coordinator, same API — instead of
// in-process; the output is identical either way:
//
//	figures -fig 1a -server http://127.0.0.1:8080
package main

import (
	"context"
	"crypto/rsa"
	"flag"
	"fmt"
	"os"
	"time"

	"anongeo"
	"anongeo/internal/adversary"
	"anongeo/internal/anoncrypto"
	"anongeo/internal/core"
	"anongeo/internal/dist"
	"anongeo/internal/exp"
	"anongeo/internal/geo"
	"anongeo/internal/locservice"
	"anongeo/internal/neighbor"
	"anongeo/internal/serve"
	"anongeo/internal/sim"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "experiment: 1a | 1b | a1 | a2 | a3 | a4 | a5 | a6 | all")
		short    = flag.Bool("short", false, "reduced durations for a quick look")
		repeats  = flag.Int("repeats", 2, "seeds averaged per sweep cell")
		csv      = flag.Bool("csv", false, "CSV output for the density sweeps")
		seed     = flag.Int64("seed", 1, "base random seed")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		cache    = flag.Bool("cache", false, "memoize cell results under "+exp.DefaultCacheDir+"/")
		progress = flag.String("progress", "off", "run telemetry to stderr: off | stderr | jsonl")
		retries  = flag.Int("retries", 0, "extra attempts per failed cell (capped backoff)")
		server   = flag.String("server", "", "agrsimd base URL: run the density sweeps on a daemon (worker or coordinator) instead of in-process")
	)
	flag.Parse()

	r := &runner{short: *short, repeats: *repeats, csv: *csv, seed: *seed, parallel: *parallel, retries: *retries, server: *server}
	if *cache {
		r.cacheDir = exp.DefaultCacheDir
	}
	hook, err0 := exp.HookForMode(*progress)
	if err0 != nil {
		fmt.Fprintln(os.Stderr, "figures:", err0)
		os.Exit(1)
	}
	if hook != nil {
		r.hooks = append(r.hooks, hook)
	}
	if *server != "" && *fig != "1a" && *fig != "1b" {
		fmt.Fprintf(os.Stderr, "figures: -server only supports the density sweeps (-fig 1a | 1b); %q runs in-process experiments\n", *fig)
		os.Exit(1)
	}
	var err error
	switch *fig {
	case "1a", "1b":
		err = r.figure1(*fig)
	case "a1":
		err = r.ablationRing()
	case "a2":
		err = r.ablationTrapdoorLocality()
	case "a3":
		err = r.ablationALS()
	case "a4":
		err = r.ablationPolicy()
	case "a5":
		err = r.ablationAdversary()
	case "a6":
		err = r.ablationInBandLS()
	case "all":
		for _, f := range []func() error{
			func() error { return r.figure1("1a+1b") },
			r.ablationRing,
			r.ablationTrapdoorLocality,
			r.ablationALS,
			r.ablationPolicy,
			r.ablationAdversary,
			r.ablationInBandLS,
		} {
			if err = f(); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		err = fmt.Errorf("unknown figure %q", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

type runner struct {
	short    bool
	repeats  int
	csv      bool
	seed     int64
	parallel int
	retries  int
	cacheDir string
	server   string
	hooks    []exp.Hook
}

// sweepOptions bundles the orchestrator knobs shared by every grid.
func (r *runner) sweepOptions() core.SweepOptions {
	return core.SweepOptions{
		Repeats:  r.repeats,
		Parallel: r.parallel,
		Retries:  r.retries,
		CacheDir: r.cacheDir,
		Hooks:    r.hooks,
	}
}

// runCells executes an ablation's scenario grid on the orchestrator and
// returns results in input order, so print loops stay position-based.
func (r *runner) runCells(cells []exp.Cell[anongeo.Config]) ([]anongeo.Result, error) {
	orch, err := core.NewOrchestrator(r.sweepOptions())
	if err != nil {
		return nil, err
	}
	outs, err := orch.Execute(cells)
	if err != nil {
		return nil, err
	}
	res := make([]anongeo.Result, len(outs))
	for i, o := range outs {
		res[i] = o.Value
	}
	return res, nil
}

// baseConfig is the calibrated Figure 1 workload (see EXPERIMENTS.md):
// 30 CBR flows of 64-byte packets at 1/300 ms from 20 senders.
func (r *runner) baseConfig() anongeo.Config {
	cfg := anongeo.DefaultConfig()
	cfg.Seed = r.seed
	cfg.PacketInterval = 300 * time.Millisecond
	cfg.PayloadBytes = 64
	if r.short {
		cfg.Duration = 120 * time.Second
	}
	return cfg
}

// midDuration is the run length for the single-cell ablations.
func (r *runner) midDuration() time.Duration {
	if r.short {
		return 60 * time.Second
	}
	return 300 * time.Second
}

// figure1 regenerates Figure 1(a) and/or 1(b): the three protocol curves
// across the density axis.
func (r *runner) figure1(which string) error {
	cfg := r.baseConfig()
	fmt.Printf("# Figure 1 (%s): %v per run, %d repeats, 30 CBR flows (64 B @ %v) from 20 senders\n",
		which, cfg.Duration, r.repeats, cfg.PacketInterval)
	var (
		pts []anongeo.DensityPoint
		err error
	)
	if r.server != "" {
		pts, err = r.remoteSweep(cfg)
	} else {
		pts, err = anongeo.DensitySweepOpts(cfg, anongeo.PaperNodeCounts,
			[]anongeo.Protocol{anongeo.ProtoGPSR, anongeo.ProtoAGFW, anongeo.ProtoAGFWNoAck}, r.sweepOptions())
	}
	if err != nil {
		return err
	}
	if r.csv {
		return anongeo.WriteSweepCSV(os.Stdout, pts)
	}
	return anongeo.WriteSweepTable(os.Stdout, pts)
}

// remoteSweep runs the Figure 1 grid on an agrsimd daemon through the
// shared dist client (retries, backoff, Retry-After handling included)
// and rebuilds the density points from the job's folded results — the
// same points the in-process sweep returns, since the daemon folds with
// the identical core machinery.
func (r *runner) remoteSweep(cfg anongeo.Config) ([]anongeo.DensityPoint, error) {
	req := serve.SweepRequest{
		Base:       cfg,
		NodeCounts: anongeo.PaperNodeCounts,
		Protocols:  []string{"gpsr", "agfw", "agfw-noack"},
		Repeats:    r.repeats,
	}
	c := dist.NewClient(r.server)
	ctx := context.Background()
	sub, err := c.SubmitSweep(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("submit to %s: %w", r.server, err)
	}
	verb := "submitted"
	if !sub.Created {
		verb = "deduped to existing job"
	}
	fmt.Fprintf(os.Stderr, "figures: %s %s on %s (%d cells)\n", verb, sub.ID, r.server, req.Cells())
	for {
		st, err := c.Job(ctx, sub.ID)
		if err != nil {
			return nil, fmt.Errorf("poll job %s: %w", sub.ID, err)
		}
		switch st.State {
		case serve.JobDone:
			pts := make([]anongeo.DensityPoint, len(st.Points))
			for i, p := range st.Points {
				proto, err := serve.ParseProtocol(p.Protocol)
				if err != nil {
					return nil, fmt.Errorf("job %s point %d: %w", sub.ID, i, err)
				}
				pts[i] = anongeo.DensityPoint{Protocol: proto, Nodes: p.Nodes, Result: p.Result}
			}
			return pts, nil
		case serve.JobFailed, serve.JobCanceled:
			return nil, fmt.Errorf("job %s %s: %s", sub.ID, st.State, st.Error)
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// ringFixtures generates the keys and certificates the A1 micro-bench
// signs with.
func ringFixtures(n int) ([]*anoncrypto.KeyPair, error) {
	ca, err := anoncrypto.NewCA(1024)
	if err != nil {
		return nil, err
	}
	keys := make([]*anoncrypto.KeyPair, 0, n)
	for i := 0; i < n; i++ {
		kp, err := anoncrypto.GenerateKeyPair(anoncrypto.Identity(fmt.Sprintf("m%d", i)), anoncrypto.DefaultKeyBits)
		if err != nil {
			return nil, err
		}
		if _, err := ca.Issue(kp); err != nil {
			return nil, err
		}
		keys = append(keys, kp)
	}
	return keys, nil
}

// publicKeys extracts the RSA public keys of a keypair ring.
func publicKeys(ring []*anoncrypto.KeyPair) []*rsa.PublicKey {
	out := make([]*rsa.PublicKey, len(ring))
	for i, kp := range ring {
		out[i] = kp.Public()
	}
	return out
}

// ablationRing quantifies §3.1.2/§4: anonymity set size k+1 versus hello
// bytes and genuine ring-signature cost, plus the network-level effect.
func (r *runner) ablationRing() error {
	fmt.Println("# A1: authenticated ANT — ring size vs overhead")
	fmt.Println("k\tanonymity\thello_bytes(ref)\thello_bytes(attach)\tsign_ms\tverify_ms")
	keys, err := ringFixtures(17)
	if err != nil {
		return err
	}
	msg := []byte("HELLO n loc ts")
	for _, k := range []int{1, 2, 4, 8, 16} {
		ring := keys[:k+1]
		pubs := publicKeys(ring)
		const reps = 5
		t0 := time.Now()
		var sig *anoncrypto.RingSignature
		for i := 0; i < reps; i++ {
			sig, err = anoncrypto.RingSign(msg, pubs, 0, ring[0].Private)
			if err != nil {
				return err
			}
		}
		signMS := float64(time.Since(t0).Microseconds()) / 1000 / reps
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			if !anoncrypto.RingVerify(msg, pubs, sig) {
				return fmt.Errorf("ring verify failed at k=%d", k)
			}
		}
		verifyMS := float64(time.Since(t0).Microseconds()) / 1000 / reps
		fmt.Printf("%d\t%d\t%d\t%d\t%.2f\t%.2f\n", k, k+1,
			neighbor.EstimateAuthHelloBytes(k, anoncrypto.DefaultKeyBits, false),
			neighbor.EstimateAuthHelloBytes(k, anoncrypto.DefaultKeyBits, true),
			signMS, verifyMS)
	}

	fmt.Println("\n# A1 (network effect): AGFW at 50 nodes with authenticated hellos")
	fmt.Println("k\tpdf\tavg_latency\tbits_on_air")
	ks := []int{0, 2, 4, 8}
	var cells []exp.Cell[anongeo.Config]
	for _, k := range ks {
		cfg := r.baseConfig()
		cfg.AuthHelloK = k
		cfg.Duration = r.midDuration()
		cells = append(cells, exp.Cell[anongeo.Config]{Label: fmt.Sprintf("a1/k=%d", k), Config: cfg})
	}
	results, err := r.runCells(cells)
	if err != nil {
		return err
	}
	for i, k := range ks {
		res := results[i]
		fmt.Printf("%d\t%.3f\t%v\t%d\n", k, res.Summary.DeliveryFraction,
			res.Summary.AvgLatency.Round(10*time.Microsecond), res.Channel.BitsSent)
	}
	return nil
}

// ablationTrapdoorLocality verifies §3.2's efficiency claim: trapdoor
// attempts concentrate in the last-hop region.
func (r *runner) ablationTrapdoorLocality() error {
	fmt.Println("# A2: trapdoor locality — only last-hop-region nodes pay the decrypt cost")
	fmt.Println("nodes\tforwards\ttrapdoor_tries\ttries_per_delivered\topens")
	counts := []int{50, 100, 150}
	var cells []exp.Cell[anongeo.Config]
	for _, nn := range counts {
		cfg := r.baseConfig()
		cfg.Nodes = nn
		cfg.Duration = r.midDuration()
		cells = append(cells, exp.Cell[anongeo.Config]{Label: fmt.Sprintf("a2/%d nodes", nn), Config: cfg})
	}
	results, err := r.runCells(cells)
	if err != nil {
		return err
	}
	for i, nn := range counts {
		res := results[i]
		perDelivered := 0.0
		if res.Summary.Delivered > 0 {
			perDelivered = float64(res.AGFW.TrapdoorTries) / float64(res.Summary.Delivered)
		}
		fmt.Printf("%d\t%d\t%d\t%.2f\t%d\n", nn, res.AGFW.Forwards, res.AGFW.TrapdoorTries,
			perDelivered, res.AGFW.TrapdoorOpens)
	}
	return nil
}

// ablationALS measures §3.3's indexed vs no-index trade-off with genuine
// RSA: reply bytes and trial decryptions as the server bucket grows.
func (r *runner) ablationALS() error {
	fmt.Println("# A3: ALS indexed vs no-index (scan) — overhead vs bucket size")
	fmt.Println("entries\tindexed_reply_B\tindexed_decrypts\tscan_reply_B\tscan_decrypts")
	grid := geo.NewGridMap(geo.NewRect(1500, 300), 300)
	ssa := locservice.NewServerSelection(grid, 1)
	for _, m := range []int{4, 8, 16, 32, 64} {
		keys := map[anoncrypto.Identity]*anoncrypto.KeyPair{}
		mk := func(id anoncrypto.Identity) *anoncrypto.KeyPair {
			kp, err := anoncrypto.GenerateKeyPair(id, anoncrypto.DefaultKeyBits)
			if err != nil {
				panic(err)
			}
			keys[id] = kp
			return kp
		}
		requester := mk("B")
		dir := func(id anoncrypto.Identity) (*rsa.PublicKey, bool) {
			kp, ok := keys[id]
			if !ok {
				return nil, false
			}
			return kp.Public(), true
		}
		srv := locservice.NewServer(60 * sim.Second)
		var target anoncrypto.Identity
		for i := 0; i < m; i++ {
			id := anoncrypto.Identity(fmt.Sprintf("u%d", i))
			up := locservice.Updater{Self: *mk(id), SSA: ssa, Directory: dir}
			updates, err := up.BuildUpdates([]anoncrypto.Identity{"B"}, geo.Pt(float64(i%1500), float64(i%300)), 0)
			if err != nil {
				return err
			}
			for _, us := range updates {
				for _, u := range us {
					srv.Apply(u, 0)
				}
			}
			if i == m/2 {
				target = id
			}
		}

		reqIdx := locservice.Requester{Self: requester, SSA: ssa, Directory: dir}
		q, _, err := reqIdx.BuildQuery(target, geo.Pt(10, 10))
		if err != nil {
			return err
		}
		rep, ok := srv.Answer(q, sim.Second)
		if !ok {
			return fmt.Errorf("indexed lookup missed at m=%d", m)
		}
		if _, _, ok := reqIdx.OpenReply(rep, target); !ok {
			return fmt.Errorf("indexed open failed at m=%d", m)
		}

		reqScan := locservice.Requester{Self: requester, SSA: ssa, Directory: dir}
		sq, _ := reqScan.BuildScanQuery(target, geo.Pt(10, 10))
		srep := srv.AnswerScan(sq, sim.Second)
		if _, _, ok := reqScan.OpenReply(srep, target); !ok {
			return fmt.Errorf("scan open failed at m=%d", m)
		}

		fmt.Printf("%d\t%d\t%d\t%d\t%d\n", m,
			rep.ReplyBytes(), reqIdx.DecryptAttempts,
			srep.ReplyBytes(), reqScan.DecryptAttempts)
	}
	return nil
}

// ablationPolicy runs the §3.1.1 freshness ablation: next-hop policies
// with and without the reachability filter.
func (r *runner) ablationPolicy() error {
	fmt.Println("# A4: AGFW next-hop policy ablation (freshness matters under mobility)")
	fmt.Println("policy\treach_filter\tnodes\tpdf\tavg_latency")
	type row struct {
		name  string
		reach bool
		nodes int
	}
	var (
		rows  []row
		cells []exp.Cell[anongeo.Config]
	)
	for _, nn := range []int{50, 150} {
		for _, pol := range []struct {
			name string
			p    anongeo.Policy
		}{{"closest", anongeo.PolicyClosest}, {"freshest", anongeo.PolicyFreshest}, {"weighted", anongeo.PolicyWeighted}} {
			for _, reach := range []bool{false, true} {
				cfg := r.baseConfig()
				cfg.Nodes = nn
				cfg.Policy = pol.p
				cfg.ReachFilter = reach
				cfg.Duration = r.midDuration()
				rows = append(rows, row{name: pol.name, reach: reach, nodes: nn})
				cells = append(cells, exp.Cell[anongeo.Config]{
					Label:  fmt.Sprintf("a4/%s/reach=%v/%d nodes", pol.name, reach, nn),
					Config: cfg,
				})
			}
		}
	}
	results, err := r.runCells(cells)
	if err != nil {
		return err
	}
	for i, rw := range rows {
		res := results[i]
		fmt.Printf("%s\t%v\t%d\t%.3f\t%v\n", rw.name, rw.reach, rw.nodes,
			res.Summary.DeliveryFraction, res.Summary.AvgLatency.Round(10*time.Microsecond))
	}
	return nil
}

// ablationInBandLS measures §5's prediction for running the location
// service in-band instead of the oracle the paper simulated with: the
// performance should be "similar … expect it to elegantly degrade a
// bit". A6 compares oracle, in-band plain DLM, and in-band ALS.
func (r *runner) ablationInBandLS() error {
	fmt.Println("# A6: in-band location service vs the paper's oracle")
	fmt.Println("locservice\tprotocol\tpdf\tavg_latency\tls_queries\tls_resolved\tls_timeouts")
	dur := r.midDuration()
	for _, sc := range []struct {
		mode  core.LocationServiceMode
		proto anongeo.Protocol
	}{
		{core.LSOracle, anongeo.ProtoAGFW},
		{core.LSALS, anongeo.ProtoAGFW},
		{core.LSOracle, anongeo.ProtoGPSR},
		{core.LSPlainDLM, anongeo.ProtoGPSR},
	} {
		cfg := r.baseConfig()
		cfg.Duration = dur
		cfg.Protocol = sc.proto
		cfg.LocationService = sc.mode
		net, err := anongeo.Build(cfg)
		if err != nil {
			return err
		}
		res, err := net.Run()
		if err != nil {
			return err
		}
		ls := net.LSStats()
		fmt.Printf("%v\t%v\t%.3f\t%v\t%d\t%d\t%d\n", sc.mode, sc.proto,
			res.Summary.DeliveryFraction, res.Summary.AvgLatency.Round(10*time.Microsecond),
			ls.Queries, ls.Resolved, ls.Timeouts)
	}
	return nil
}

// ablationAdversary quantifies §2/§4: what a global passive eavesdropper
// learns under each configuration.
func (r *runner) ablationAdversary() error {
	fmt.Println("# A5: global passive eavesdropper harvest")
	fmt.Println("config\tidentities\tmac_addrs\tpseudonyms\tmaclink_bindings\ttarget_coverage")
	dur := r.midDuration()
	for _, sc := range []struct {
		name   string
		proto  anongeo.Protocol
		expose bool
	}{
		{"GPSR", anongeo.ProtoGPSR, false},
		{"AGFW", anongeo.ProtoAGFW, false},
		{"AGFW-exposed-MAC", anongeo.ProtoAGFW, true},
	} {
		cfg := r.baseConfig()
		cfg.Duration = dur
		cfg.Protocol = sc.proto
		cfg.ExposeSenderMAC = sc.expose
		cfg.WithSniffer = true
		net, err := anongeo.Build(cfg)
		if err != nil {
			return err
		}
		res, err := net.Run()
		if err != nil {
			return err
		}
		h := res.Harvest
		bindings := adversary.MACLinkAttack(net.Sniffer.Observations())
		coverage := 0.0
		if ss, ok := h.ByIdentity[string(core.NodeID(0))]; ok {
			coverage = adversary.Coverage(ss, sim.Time(dur), 3*sim.Second)
		}
		fmt.Printf("%s\t%d\t%d\t%d\t%d\t%.2f\n", sc.name,
			len(h.ByIdentity), len(h.ByMAC), len(h.ByPseudonym), len(bindings), coverage)
	}
	return nil
}

// Command alsdemo exercises the Anonymous Location Service at message
// level: m updaters share one location server; a requester retrieves one
// of them through the indexed (Algorithm 3.3) or no-index (§3.3
// alternative) protocol. It prints the per-message byte costs, the trial
// decryptions, and what the server itself could read.
//
//	alsdemo -entries 16 -variant scan
package main

import (
	"crypto/rsa"
	"flag"
	"fmt"
	"os"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/locservice"
	"anongeo/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alsdemo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		entries  = flag.Int("entries", 8, "co-stored updaters at the server")
		replicas = flag.Int("replicas", 2, "home grids per identity (ssa replicas)")
		variant  = flag.String("variant", "indexed", "query variant: indexed | scan")
		gridSize = flag.Float64("grid", 300, "grid cell size in meters")
	)
	flag.Parse()

	grid := geo.NewGridMap(geo.NewRect(1500, 300), *gridSize)
	ssa := locservice.NewServerSelection(grid, *replicas)

	keys := map[anoncrypto.Identity]*anoncrypto.KeyPair{}
	mk := func(id anoncrypto.Identity) (*anoncrypto.KeyPair, error) {
		kp, err := anoncrypto.GenerateKeyPair(id, anoncrypto.DefaultKeyBits)
		if err != nil {
			return nil, err
		}
		keys[id] = kp
		return kp, nil
	}
	dir := func(id anoncrypto.Identity) (*rsa.PublicKey, bool) {
		kp, ok := keys[id]
		if !ok {
			return nil, false
		}
		return kp.Public(), true
	}

	requester, err := mk("B")
	if err != nil {
		return err
	}

	srv := locservice.NewServer(120 * sim.Second)
	now := sim.Time(10 * sim.Second)
	var target anoncrypto.Identity
	var targetLoc geo.Point
	updateBytes := 0
	for i := 0; i < *entries; i++ {
		id := anoncrypto.Identity(fmt.Sprintf("u%02d", i))
		kp, err := mk(id)
		if err != nil {
			return err
		}
		loc := geo.Pt(float64((i*137)%1500), float64((i*53)%300))
		up := locservice.Updater{Self: *kp, SSA: ssa, Directory: dir}
		updates, err := up.BuildUpdates([]anoncrypto.Identity{"B"}, loc, now)
		if err != nil {
			return err
		}
		for _, us := range updates {
			for _, u := range us {
				srv.Apply(u, now)
				updateBytes += locservice.UpdateBytes()
			}
		}
		if i == *entries/2 {
			target, targetLoc = id, loc
		}
	}
	fmt.Printf("server bucket: %d records from %d updaters (each sealed for requester B)\n",
		srv.Len(now), *entries)
	fmt.Printf("update traffic: %d B total (%d B per RLU, %d home grid(s) each)\n\n",
		updateBytes, locservice.UpdateBytes(), *replicas)

	req := locservice.Requester{Self: requester, SSA: ssa, Directory: dir}
	switch *variant {
	case "indexed":
		q, cell, err := req.BuildQuery(target, geo.Pt(50, 50))
		if err != nil {
			return err
		}
		rep, ok := srv.Answer(q, now)
		if !ok {
			return fmt.Errorf("no record under the index")
		}
		loc, ts, ok := req.OpenReply(rep, target)
		fmt.Printf("indexed query to grid %v: %d B up, %d B down\n", cell, locservice.QueryBytes(), rep.ReplyBytes())
		fmt.Printf("recovered %v: %v (ts %v, ok=%v), decrypt attempts: %d\n", target, loc, ts, ok, req.DecryptAttempts)
	case "scan":
		sq, cell := req.BuildScanQuery(target, geo.Pt(50, 50))
		rep := srv.AnswerScan(sq, now)
		loc, ts, ok := req.OpenReply(rep, target)
		fmt.Printf("scan query to grid %v: %d B up, %d B down (%d records)\n",
			cell, locservice.ScanQueryBytes(), rep.ReplyBytes(), len(rep.Sealed))
		fmt.Printf("recovered %v: %v (ts %v, ok=%v), decrypt attempts: %d\n", target, loc, ts, ok, req.DecryptAttempts)
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	if targetLoc.Dist(geo.Pt(0, 0)) >= 0 {
		fmt.Printf("\nserver's view: opaque 64 B indexes and 64 B ciphertexts — no identities, no locations\n")
	}
	return nil
}

// Command lbsbench sweeps the LBS query-serving workload
// (internal/lbs) across backend × privacy parameter × query volume and
// writes the privacy-vs-utility curves as CSV — the command-line twin
// of the daemon's POST /v1/lbs:
//
//	lbsbench -backend all                        # 4 backends × 3-point axes
//	lbsbench -backend kanon -ks 2,5,10,20
//	lbsbench -backend geoind -eps 0.005,0.02,0.1
//	lbsbench -backend paperals -updates 5,15,45
//	lbsbench -backend all -loads 10000,100000    # add a query-volume axis
//
// Each backend sweeps its own parameter axis: kanon the cloak size k,
// gridcloak the grid level, geoind ε, paperals the update interval
// (staleness vs sealed-report overhead). Every row reports both sides
// of the tradeoff: utility (distance error, cloak area, bytes, modeled
// service latency) and privacy (snapshot re-identification probability
// and the pseudonym linker's tracking scores).
//
// Cells execute on the internal/exp orchestrator (-parallel, -cache,
// -progress, -retries as in cmd/sweep); output is bit-identical for a
// fixed -seed at any -parallel width.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"anongeo/internal/exp"
	"anongeo/internal/lbs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lbsbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		backend  = flag.String("backend", "all", "backends to sweep: all | comma list of paperals,kanon,gridcloak,geoind")
		clients  = flag.Int("clients", 200, "mobile client population")
		queries  = flag.Int("queries", 10000, "lookup queries per cell")
		duration = flag.Duration("duration", 120*time.Second, "simulated time per cell")
		update   = flag.Duration("update", 10*time.Second, "base report interval")
		seed     = flag.Int64("seed", 1, "workload seed")
		keyBits  = flag.Int("keybits", 512, "paperals RSA modulus size")
		ks       = flag.String("ks", "", "kanon axis: comma cloak sizes (default 2,5,10)")
		levels   = flag.String("levels", "", "gridcloak axis: comma grid levels (default 3,5,7)")
		eps      = flag.String("eps", "", "geoind axis: comma epsilons in 1/m (default 0.005,0.02,0.1)")
		updates  = flag.String("updates", "", "paperals axis: comma update intervals in seconds (default 5,15,45)")
		loads    = flag.String("loads", "", "query-volume axis: comma query counts (default -queries)")
		csvPath  = flag.String("o", "lbs_curves.csv", "CSV output path (- for stdout)")
		jsonPath = flag.String("json", "", "also write the curve points as JSON to this path")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		cache    = flag.Bool("cache", false, "memoize cell results under "+exp.DefaultCacheDir+"/")
		progress = flag.String("progress", "off", "run telemetry to stderr: off | stderr | jsonl")
		retries  = flag.Int("retries", 0, "extra attempts per failed cell (capped backoff)")
	)
	flag.Parse()

	base := lbs.DefaultConfig()
	base.Seed = *seed
	base.Clients = *clients
	base.Queries = *queries
	base.Duration = *duration
	base.UpdateInterval = *update
	base.KeyBits = 0 // backend parameters are per-cell; Normalize validates every cell

	req := lbs.SweepRequest{Base: base}
	if *backend != "all" {
		for _, b := range strings.Split(*backend, ",") {
			req.Backends = append(req.Backends, strings.TrimSpace(b))
		}
	}
	var err error
	if req.Ks, err = parseInts(*ks); err != nil {
		return fmt.Errorf("-ks: %w", err)
	}
	if req.GridLevels, err = parseInts(*levels); err != nil {
		return fmt.Errorf("-levels: %w", err)
	}
	if req.Epsilons, err = parseFloats(*eps); err != nil {
		return fmt.Errorf("-eps: %w", err)
	}
	if req.UpdateSeconds, err = parseFloats(*updates); err != nil {
		return fmt.Errorf("-updates: %w", err)
	}
	if req.QueryCounts, err = parseInts(*loads); err != nil {
		return fmt.Errorf("-loads: %w", err)
	}
	if *keyBits != 512 {
		req.Base.KeyBits = *keyBits // cellConfig picks this up for paperals cells
	}
	req, err = req.Normalize()
	if err != nil {
		return err
	}

	opt := lbs.Options{Parallel: *parallel, Retries: *retries}
	if *cache {
		opt.CacheDir = exp.DefaultCacheDir
	}
	hook, err := exp.HookForMode(*progress)
	if err != nil {
		return err
	}
	if hook != nil {
		opt.Hooks = append(opt.Hooks, hook)
	}
	orch, err := lbs.NewOrchestrator(opt)
	if err != nil {
		return err
	}

	cells := req.Cells()
	start := time.Now()
	outs, err := orch.Execute(cells)
	if err != nil {
		return err
	}
	for i, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("cell %s: %w", cells[i].Label, o.Err)
		}
	}
	points := lbs.Fold(req, outs)

	out := os.Stdout
	if *csvPath != "-" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := lbs.WriteCurvesCSV(out, points); err != nil {
		return err
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}

	if *csvPath != "-" {
		printTable(points)
		fmt.Printf("\n%d cells in %v; curves written to %s\n",
			len(points), time.Since(start).Round(time.Millisecond), *csvPath)
	}
	return nil
}

// printTable renders the tradeoff summary humans read; the CSV carries
// the full column set.
func printTable(points []lbs.CurvePoint) {
	fmt.Printf("%-10s %-12s %8s %9s %10s %11s %8s %8s %8s\n",
		"backend", "param", "queries", "err_m", "cloak_m2", "bytes/query", "reid", "linked", "tracked")
	for _, p := range points {
		r := p.Result
		fmt.Printf("%-10s %-12s %8d %9.1f %10.0f %11.1f %8.4f %8.3f %8.3f\n",
			p.Backend, fmt.Sprintf("%s=%g", p.Param, p.Value), p.Queries,
			r.MeanErrM, r.MeanCloakM2, r.BytesPerQuery, r.MeanReidProb,
			r.Tracking.LinkedFraction, r.Tracking.ReidentifiedFraction)
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Command agrsim runs one simulation scenario of the anonymous
// geographic routing testbed and prints its metrics.
//
// Examples:
//
//	agrsim -proto agfw -nodes 50 -duration 900s
//	agrsim -proto gpsr -nodes 150 -interval 250ms -sniffer
//	agrsim -proto agfw-noack -nodes 112 -seed 7 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"anongeo"
	"anongeo/internal/core"
	"anongeo/internal/exp"
	"anongeo/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "agrsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proto     = flag.String("proto", "agfw", "protocol: gpsr | agfw | agfw-noack")
		nodes     = flag.Int("nodes", 50, "number of nodes")
		duration  = flag.Duration("duration", 900*time.Second, "simulated time")
		seed      = flag.Int64("seed", 1, "random seed")
		interval  = flag.Duration("interval", 250*time.Millisecond, "per-flow CBR packet interval")
		payload   = flag.Int("payload", 64, "application payload bytes")
		flows     = flag.Int("flows", 30, "number of CBR flows")
		senders   = flag.Int("senders", 20, "number of distinct sending nodes")
		static    = flag.Bool("static", false, "disable mobility")
		perimeter = flag.Bool("perimeter", false, "enable GPSR perimeter recovery")
		policy    = flag.String("policy", "weighted", "AGFW next-hop policy: closest | freshest | weighted")
		expose    = flag.Bool("expose-mac", false, "AGFW misconfiguration: real source MAC addresses")
		realCrypt = flag.Bool("real-crypto", false, "use genuine RSA-512 trapdoors")
		authK     = flag.Int("authk", 0, "authenticated hellos with k ring decoys (0 = plain)")
		sniffer   = flag.Bool("sniffer", false, "attach a global eavesdropper and report its harvest")
		reach     = flag.Bool("reach-filter", true, "AGFW: skip possibly out-of-range next hops")
		csv       = flag.Bool("csv", false, "machine-readable one-line CSV output")
		traceN    = flag.Int("trace", 0, "print the last N router trace events")
		repeat    = flag.Int("repeat", 1, "run the scenario under that many consecutive seeds")
		parallel  = flag.Int("parallel", 0, "worker pool size for -repeat > 1 (0 = GOMAXPROCS)")
		cache     = flag.Bool("cache", false, "memoize results under "+exp.DefaultCacheDir+"/ (skipped with -sniffer or -trace)")
		progress  = flag.String("progress", "off", "run telemetry to stderr: off | stderr | jsonl")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "agrsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "agrsim:", err)
			}
		}()
	}

	cfg := anongeo.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.Duration = *duration
	cfg.Seed = *seed
	cfg.PacketInterval = *interval
	cfg.PayloadBytes = *payload
	cfg.Flows = *flows
	cfg.Senders = *senders
	cfg.Static = *static
	cfg.Perimeter = *perimeter
	cfg.ExposeSenderMAC = *expose
	cfg.RealCrypto = *realCrypt
	cfg.AuthHelloK = *authK
	cfg.WithSniffer = *sniffer
	cfg.ReachFilter = *reach
	var tl *trace.Log
	if *traceN > 0 {
		tl = trace.NewLog(*traceN)
		cfg.Trace = tl
	}

	switch *proto {
	case "gpsr":
		cfg.Protocol = anongeo.ProtoGPSR
	case "agfw":
		cfg.Protocol = anongeo.ProtoAGFW
	case "agfw-noack":
		cfg.Protocol = anongeo.ProtoAGFWNoAck
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	switch *policy {
	case "closest":
		cfg.Policy = anongeo.PolicyClosest
	case "freshest":
		cfg.Policy = anongeo.PolicyFreshest
	case "weighted":
		cfg.Policy = anongeo.PolicyWeighted
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	// Even a single scenario goes through the experiment orchestrator:
	// it contributes the result cache, telemetry, and (with -repeat)
	// seed batteries on a worker pool for free.
	if *repeat < 1 {
		*repeat = 1
	}
	var cells []exp.Cell[anongeo.Config]
	for rep := 0; rep < *repeat; rep++ {
		c := cfg
		c.Seed = cfg.Seed + int64(rep)
		cells = append(cells, exp.Cell[anongeo.Config]{
			Label:  fmt.Sprintf("%v/%d nodes/seed %d", c.Protocol, c.Nodes, c.Seed),
			Config: c,
		})
	}
	opt := core.SweepOptions{Parallel: *parallel}
	if *cache {
		opt.CacheDir = exp.DefaultCacheDir
	}
	hook, err := exp.HookForMode(*progress)
	if err != nil {
		return err
	}
	if hook != nil {
		opt.Hooks = append(opt.Hooks, hook)
	}
	orch, err := core.NewOrchestrator(opt)
	if err != nil {
		return err
	}
	outs, err := orch.Execute(cells)
	if err != nil {
		return err
	}

	for i, out := range outs {
		res := out.Value
		s := res.Summary
		if *csv {
			fmt.Printf("%s,%d,%d,%d,%.4f,%.3f,%.3f,%.2f\n",
				cfg.Protocol, cfg.Nodes, s.Sent, s.Delivered, s.DeliveryFraction,
				float64(s.AvgLatency)/1e6, float64(s.P95Latency)/1e6, s.AvgHops)
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("scenario : %v, %d nodes, %v, seed %d\n", cfg.Protocol, cfg.Nodes, cfg.Duration, cells[i].Config.Seed)
		fmt.Printf("traffic  : %d flows from %d senders, %dB every %v\n", cfg.Flows, cfg.Senders, cfg.PayloadBytes, cfg.PacketInterval)
		fmt.Printf("result   : %v\n", s)
		if len(s.Drops) > 0 {
			fmt.Printf("drops    : %v\n", s.Drops)
		}
		fmt.Printf("channel  : %d transmissions, %d collisions, %.1f MB on air\n",
			res.Channel.Transmissions, res.Channel.Collisions, float64(res.Channel.BitsSent)/8e6)
		if cfg.Protocol == anongeo.ProtoGPSR {
			fmt.Printf("gpsr     : %+v\n", res.GPSR)
		} else {
			fmt.Printf("agfw     : %+v\n", res.AGFW)
		}
		if res.Harvest != nil {
			h := res.Harvest
			fmt.Printf("adversary: %d identities, %d MAC addrs, %d pseudonyms, %d data headers\n",
				len(h.ByIdentity), len(h.ByMAC), len(h.ByPseudonym), h.TrapdoorSightings)
		}
		if out.Cached {
			fmt.Printf("wallclock: cache hit\n")
		} else {
			fmt.Printf("wallclock: %v\n", out.Wall.Round(time.Millisecond))
		}
	}
	if tl != nil {
		fmt.Printf("trace    : last %d events (%d evicted)\n", len(tl.Events()), tl.Dropped())
		if _, err := tl.WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// Command sweep runs one protocol across a swept parameter axis and
// prints a CSV series — the generic version of cmd/figures for exploring
// operating points beyond the paper's:
//
//	sweep -axis nodes -values 25,50,100,200
//	sweep -axis interval-ms -values 100,200,300,500 -proto gpsr
//	sweep -axis loss -values 0,0.05,0.1,0.2 -proto agfw-noack
//	sweep -axis churn -values 0,5,10,20
//	sweep -axis payload -values 64,128,256,512
//
// Cells execute on the internal/exp orchestrator: -parallel bounds the
// worker pool (0 = GOMAXPROCS; output is identical at any width),
// -cache memoizes finished cells under .expcache/, and -progress
// streams run telemetry to stderr.
//
// -resume makes an interrupted sweep restartable: it enables the cache,
// checkpoints each finished cell to a per-grid journal under
// .expcache/sweeps/, and on restart reports how many cells the previous
// attempt completed — those are served from the cache, so only the
// remainder executes. kill -9 mid-sweep, rerun the same command, and
// the CSV comes out identical with no finished cell recomputed. The
// checkpoint is removed on clean completion.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"anongeo"
	"anongeo/internal/core"
	"anongeo/internal/durable"
	"anongeo/internal/exp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		axis     = flag.String("axis", "nodes", "swept parameter: nodes | interval-ms | payload | loss | churn | speed")
		values   = flag.String("values", "50,100,150", "comma-separated axis values")
		proto    = flag.String("proto", "agfw", "protocol: gpsr | agfw | agfw-noack")
		duration = flag.Duration("duration", 300*time.Second, "simulated time per cell")
		repeats  = flag.Int("repeats", 1, "seeds per cell (averaged)")
		seed     = flag.Int64("seed", 1, "base seed")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		cache    = flag.Bool("cache", false, "memoize cell results under "+exp.DefaultCacheDir+"/")
		resume   = flag.Bool("resume", false, "checkpoint per-cell progress to a crash-safe journal and resume an interrupted sweep from the cache (implies -cache)")
		cacheGC  = flag.Duration("cache-gc", 0, "before running, evict cache entries older than this (0 = keep forever)")
		progress = flag.String("progress", "off", "run telemetry to stderr: off | stderr | jsonl")
		retries  = flag.Int("retries", 0, "extra attempts per failed cell (capped backoff)")
	)
	flag.Parse()

	base := anongeo.DefaultConfig()
	base.Duration = *duration
	base.PacketInterval = 300 * time.Millisecond
	switch *proto {
	case "gpsr":
		base.Protocol = anongeo.ProtoGPSR
	case "agfw":
		base.Protocol = anongeo.ProtoAGFW
	case "agfw-noack":
		base.Protocol = anongeo.ProtoAGFWNoAck
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	if *repeats < 1 {
		*repeats = 1
	}

	// One cell per (axis value, repeat); the orchestrator returns them
	// in input order so aggregation below is position-based.
	var (
		cells []exp.Cell[anongeo.Config]
		raws  []string
	)
	for _, raw := range strings.Split(*values, ",") {
		raw = strings.TrimSpace(raw)
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("axis value %q: %w", raw, err)
		}
		raws = append(raws, raw)
		for rep := 0; rep < *repeats; rep++ {
			cfg := base
			cfg.Seed = *seed + int64(rep)
			if err := applyAxis(&cfg, *axis, v); err != nil {
				return err
			}
			cells = append(cells, exp.Cell[anongeo.Config]{
				Label:  fmt.Sprintf("%s=%s/rep %d", *axis, raw, rep),
				Config: cfg,
			})
		}
	}

	opt := core.SweepOptions{Parallel: *parallel, Retries: *retries}
	if *cache || *resume {
		opt.CacheDir = exp.DefaultCacheDir
	}
	hook, err := exp.HookForMode(*progress)
	if err != nil {
		return err
	}
	if hook != nil {
		opt.Hooks = append(opt.Hooks, hook)
	}

	// -resume: checkpoint finished cells to a per-grid journal. The
	// cache holds the results themselves; the journal records which
	// cells committed, so a rerun can say exactly how much survives and
	// a clean finish can retire the checkpoint.
	var ckpt *sweepCheckpoint
	if *resume {
		ckpt, err = openCheckpoint(opt.CacheDir, cells)
		if err != nil {
			return err
		}
		defer ckpt.close()
		if n := ckpt.completed(); n > 0 {
			fmt.Fprintf(os.Stderr, "sweep: resuming — %d/%d cells completed by a previous attempt (served from cache)\n", n, len(cells))
		}
		opt.Hooks = append(opt.Hooks, ckpt)
	}
	orch, err := core.NewOrchestrator(opt)
	if err != nil {
		return err
	}
	if orch.Cache != nil && *cacheGC > 0 {
		if n, err := orch.Cache.Prune(0, *cacheGC); err != nil {
			fmt.Fprintln(os.Stderr, "sweep: cache gc:", err)
		} else if n > 0 {
			fmt.Fprintf(os.Stderr, "sweep: cache gc evicted %d entries\n", n)
		}
	}

	// Ctrl-C cancels the grid instead of leaving workers mid-cell: the
	// context reaches into each in-flight simulation's event loop.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	outs, err := orch.ExecuteContext(ctx, cells)
	if err != nil {
		return err
	}
	if ckpt != nil {
		ckpt.retire() // clean completion: the checkpoint has served its purpose
	}

	fmt.Printf("axis,%s,pdf,avg_latency_ms,p95_latency_ms,avg_hops,collisions\n", *axis)
	i := 0
	for _, raw := range raws {
		var pdf, lat, p95, hops, col float64
		for rep := 0; rep < *repeats; rep++ {
			res := outs[i].Value
			i++
			pdf += res.Summary.DeliveryFraction
			lat += float64(res.Summary.AvgLatency) / 1e6
			p95 += float64(res.Summary.P95Latency) / 1e6
			hops += res.Summary.AvgHops
			col += float64(res.Channel.Collisions)
		}
		n := float64(*repeats)
		fmt.Printf("%s,%s,%.4f,%.3f,%.3f,%.2f,%.0f\n", *axis, raw, pdf/n, lat/n, p95/n, hops/n, col/n)
	}
	return nil
}

// sweepCheckpoint journals per-cell completion for -resume. Records are
// JSON inside durable frames: a grid-identity header, then one record
// per committed cell. The orchestrator serializes hook emission, and a
// cell's record is appended only after its result is in the cache (the
// orchestrator writes the cache before emitting cell-finished), so the
// checkpoint never claims a cell the cache cannot serve.
type sweepCheckpoint struct {
	j    *durable.Journal
	path string
	done map[int]bool
}

// ckptRecord is one checkpoint journal entry.
type ckptRecord struct {
	Grid  string `json:"grid,omitempty"` // header: content address of the full cell list
	Index int    `json:"index"`
	Label string `json:"label,omitempty"`
}

// openCheckpoint opens (or validates and resets) the per-grid
// checkpoint journal under <cacheDir>/sweeps/. The file name and the
// header record both carry the grid's content address, so a checkpoint
// from a different grid — or a different schema version — is discarded
// rather than trusted.
func openCheckpoint(cacheDir string, cells []exp.Cell[anongeo.Config]) (*sweepCheckpoint, error) {
	key, err := exp.KeyOf(cells)
	if err != nil {
		return nil, fmt.Errorf("sweep: grid not encodable for -resume: %w", err)
	}
	dir := filepath.Join(cacheDir, "sweeps")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, key[:16]+".wal")
	j, recs, err := durable.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: open checkpoint: %w", err)
	}
	ck := &sweepCheckpoint{j: j, path: path, done: make(map[int]bool)}

	valid := false
	for i, raw := range recs {
		var rec ckptRecord
		if json.Unmarshal(raw, &rec) != nil {
			continue
		}
		if i == 0 {
			valid = rec.Grid == key
			if !valid {
				break
			}
			continue
		}
		if valid && rec.Index >= 0 && rec.Index < len(cells) {
			ck.done[rec.Index] = true
		}
	}
	if !valid {
		// Fresh grid (or stale/corrupt header): restart the checkpoint
		// with just the identity header.
		hdr, _ := json.Marshal(ckptRecord{Grid: key})
		if err := j.Close(); err != nil {
			return nil, err
		}
		if err := durable.Rewrite(path, [][]byte{hdr}); err != nil {
			return nil, err
		}
		ck.j, _, err = durable.Open(path)
		if err != nil {
			return nil, err
		}
		ck.done = make(map[int]bool)
	}
	return ck, nil
}

// completed reports how many distinct cells a previous attempt
// committed.
func (c *sweepCheckpoint) completed() int { return len(c.done) }

// Emit implements exp.Hook: every successfully resolved cell — executed
// or served from cache — is checkpointed.
func (c *sweepCheckpoint) Emit(ev exp.Event) {
	switch ev.Type {
	case exp.EventCellFinished:
		if ev.Err != "" {
			return
		}
	case exp.EventCellCached:
	default:
		return
	}
	if c.done[ev.Index] {
		return
	}
	c.done[ev.Index] = true
	b, _ := json.Marshal(ckptRecord{Index: ev.Index, Label: ev.Label})
	if err := c.j.Append(b); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: checkpoint append: %v\n", err)
	}
}

// retire removes the checkpoint after a clean completion; close only
// releases the handle (the file stays for the next -resume).
func (c *sweepCheckpoint) retire() {
	c.j.Close()
	c.j = nil
	os.Remove(c.path)
}

func (c *sweepCheckpoint) close() {
	if c.j != nil {
		c.j.Close()
	}
}

// applyAxis mutates cfg along the chosen sweep axis.
func applyAxis(cfg *anongeo.Config, axis string, v float64) error {
	switch axis {
	case "nodes":
		cfg.Nodes = int(v)
	case "interval-ms":
		cfg.PacketInterval = time.Duration(v * float64(time.Millisecond))
	case "payload":
		cfg.PayloadBytes = int(v)
	case "loss":
		cfg.LossRate = v
	case "churn":
		cfg.ChurnFailures = int(v)
	case "speed":
		cfg.MaxSpeed = v
	default:
		return fmt.Errorf("unknown axis %q", axis)
	}
	return nil
}

// Command sweep runs one protocol across a swept parameter axis and
// prints a CSV series — the generic version of cmd/figures for exploring
// operating points beyond the paper's:
//
//	sweep -axis nodes -values 25,50,100,200
//	sweep -axis interval-ms -values 100,200,300,500 -proto gpsr
//	sweep -axis loss -values 0,0.05,0.1,0.2 -proto agfw-noack
//	sweep -axis churn -values 0,5,10,20
//	sweep -axis payload -values 64,128,256,512
//
// Cells execute on the internal/exp orchestrator: -parallel bounds the
// worker pool (0 = GOMAXPROCS; output is identical at any width),
// -cache memoizes finished cells under .expcache/, and -progress
// streams run telemetry to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"anongeo"
	"anongeo/internal/core"
	"anongeo/internal/exp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		axis     = flag.String("axis", "nodes", "swept parameter: nodes | interval-ms | payload | loss | churn | speed")
		values   = flag.String("values", "50,100,150", "comma-separated axis values")
		proto    = flag.String("proto", "agfw", "protocol: gpsr | agfw | agfw-noack")
		duration = flag.Duration("duration", 300*time.Second, "simulated time per cell")
		repeats  = flag.Int("repeats", 1, "seeds per cell (averaged)")
		seed     = flag.Int64("seed", 1, "base seed")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		cache    = flag.Bool("cache", false, "memoize cell results under "+exp.DefaultCacheDir+"/")
		cacheGC  = flag.Duration("cache-gc", 0, "before running, evict cache entries older than this (0 = keep forever)")
		progress = flag.String("progress", "off", "run telemetry to stderr: off | stderr | jsonl")
		retries  = flag.Int("retries", 0, "extra attempts per failed cell (capped backoff)")
	)
	flag.Parse()

	base := anongeo.DefaultConfig()
	base.Duration = *duration
	base.PacketInterval = 300 * time.Millisecond
	switch *proto {
	case "gpsr":
		base.Protocol = anongeo.ProtoGPSR
	case "agfw":
		base.Protocol = anongeo.ProtoAGFW
	case "agfw-noack":
		base.Protocol = anongeo.ProtoAGFWNoAck
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	if *repeats < 1 {
		*repeats = 1
	}

	// One cell per (axis value, repeat); the orchestrator returns them
	// in input order so aggregation below is position-based.
	var (
		cells []exp.Cell[anongeo.Config]
		raws  []string
	)
	for _, raw := range strings.Split(*values, ",") {
		raw = strings.TrimSpace(raw)
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("axis value %q: %w", raw, err)
		}
		raws = append(raws, raw)
		for rep := 0; rep < *repeats; rep++ {
			cfg := base
			cfg.Seed = *seed + int64(rep)
			if err := applyAxis(&cfg, *axis, v); err != nil {
				return err
			}
			cells = append(cells, exp.Cell[anongeo.Config]{
				Label:  fmt.Sprintf("%s=%s/rep %d", *axis, raw, rep),
				Config: cfg,
			})
		}
	}

	opt := core.SweepOptions{Parallel: *parallel, Retries: *retries}
	if *cache {
		opt.CacheDir = exp.DefaultCacheDir
	}
	hook, err := exp.HookForMode(*progress)
	if err != nil {
		return err
	}
	if hook != nil {
		opt.Hooks = append(opt.Hooks, hook)
	}
	orch, err := core.NewOrchestrator(opt)
	if err != nil {
		return err
	}
	if orch.Cache != nil && *cacheGC > 0 {
		if n, err := orch.Cache.Prune(0, *cacheGC); err != nil {
			fmt.Fprintln(os.Stderr, "sweep: cache gc:", err)
		} else if n > 0 {
			fmt.Fprintf(os.Stderr, "sweep: cache gc evicted %d entries\n", n)
		}
	}

	// Ctrl-C cancels the grid instead of leaving workers mid-cell: the
	// context reaches into each in-flight simulation's event loop.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	outs, err := orch.ExecuteContext(ctx, cells)
	if err != nil {
		return err
	}

	fmt.Printf("axis,%s,pdf,avg_latency_ms,p95_latency_ms,avg_hops,collisions\n", *axis)
	i := 0
	for _, raw := range raws {
		var pdf, lat, p95, hops, col float64
		for rep := 0; rep < *repeats; rep++ {
			res := outs[i].Value
			i++
			pdf += res.Summary.DeliveryFraction
			lat += float64(res.Summary.AvgLatency) / 1e6
			p95 += float64(res.Summary.P95Latency) / 1e6
			hops += res.Summary.AvgHops
			col += float64(res.Channel.Collisions)
		}
		n := float64(*repeats)
		fmt.Printf("%s,%s,%.4f,%.3f,%.3f,%.2f,%.0f\n", *axis, raw, pdf/n, lat/n, p95/n, hops/n, col/n)
	}
	return nil
}

// applyAxis mutates cfg along the chosen sweep axis.
func applyAxis(cfg *anongeo.Config, axis string, v float64) error {
	switch axis {
	case "nodes":
		cfg.Nodes = int(v)
	case "interval-ms":
		cfg.PacketInterval = time.Duration(v * float64(time.Millisecond))
	case "payload":
		cfg.PayloadBytes = int(v)
	case "loss":
		cfg.LossRate = v
	case "churn":
		cfg.ChurnFailures = int(v)
	case "speed":
		cfg.MaxSpeed = v
	default:
		return fmt.Errorf("unknown axis %q", axis)
	}
	return nil
}

// Command agrsimd is the simulation-as-a-service daemon: it serves the
// internal/serve HTTP API, turning the Figure 1 evaluation engine into
// a queued, observable, multi-tenant workload.
//
//	agrsimd -addr :8080 -cache
//
// Submit a sweep, watch it, read it back:
//
//	curl -s localhost:8080/v1/sweeps -X POST -d '{
//	    "base": {"Seed":1, "Nodes":50, "Area":{"Max":{"X":1500,"Y":300}},
//	             "RadioRange":250, "MinSpeed":1, "MaxSpeed":20,
//	             "Pause":60000000000, "Flows":30, "Senders":20,
//	             "PacketInterval":500000000, "PayloadBytes":64,
//	             "Duration":900000000000, "Warmup":10000000000,
//	             "Protocol":2, "Policy":3, "ReachFilter":true},
//	    "node_counts": [50, 112, 150],
//	    "protocols": ["gpsr", "agfw"]}'
//	curl -s localhost:8080/v1/jobs/<id>/events        # NDJSON progress
//	curl -s localhost:8080/v1/jobs/<id>               # status + points
//	curl -s localhost:8080/metrics                    # Prometheus text
//
// SIGINT/SIGTERM drains gracefully: admission stops (readyz goes 503),
// running jobs get -drain-timeout to finish, stragglers are canceled,
// and completed results stay readable until the listener closes.
//
// With -journal <dir> the daemon is also crash-safe: every admission
// and job transition is fsynced to a write-ahead log, so even kill -9
// or power loss mid-sweep loses nothing acknowledged — on restart the
// journal is replayed, finished jobs (and their points) are served
// from the log, and interrupted jobs are re-admitted under their
// existing IDs, completing from per-cell cache hits instead of
// recomputing:
//
//	agrsimd -addr :8080 -cache -journal .agrsimd-journal
//	# ... kill -9 mid-grid, restart with the same flags ...
//	curl -s localhost:8080/v1/jobs/<id>   # same ID, finishes from cache
//
// With -workers the daemon becomes a coordinator instead of computing
// locally: it exposes the identical HTTP API, but shards each grid's
// cells across the listed worker daemons (admission-aware assignment,
// work-stealing for stragglers, duplicate completions discarded by
// content address) and folds the results bit-identically to a local
// run. Combined with -journal, assignments and folded cells are
// journaled too, so a coordinator crash resumes mid-grid without
// recomputing finished cells:
//
//	agrsimd -addr :8081 -journal w1.journal &   # worker 1
//	agrsimd -addr :8082 -journal w2.journal &   # worker 2
//	agrsimd -addr :8080 -journal coord.journal \
//	        -workers http://127.0.0.1:8081,http://127.0.0.1:8082
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"anongeo/internal/dist"
	"anongeo/internal/exp"
	"anongeo/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "agrsimd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		queueDepth   = flag.Int("queue", 16, "admission queue bound; beyond it submissions get 429")
		jobWorkers   = flag.Int("job-workers", 1, "jobs executing concurrently")
		parallel     = flag.Int("parallel", 0, "orchestrator pool width per job (0 = GOMAXPROCS)")
		cache        = flag.Bool("cache", true, "memoize cell results under -cache-dir")
		cacheDir     = flag.String("cache-dir", exp.DefaultCacheDir, "result cache directory")
		journalDir   = flag.String("journal", "", "job WAL directory: admissions and transitions are fsynced there, and a restart replays the journal — terminal jobs stay readable, interrupted jobs are re-admitted and finish from cache hits (empty = no journal)")
		cacheGC      = flag.Duration("cache-gc", 0, "evict cache entries older than this (0 = keep forever); also swept hourly")
		cacheMax     = flag.Int("cache-max-entries", 0, "keep at most this many cache entries (0 = unbounded)")
		jobTimeout   = flag.Duration("job-timeout", 15*time.Minute, "per-job execution wall-time cap")
		maxCells     = flag.Int("max-cells", 1024, "largest grid one job may expand to")
		retries      = flag.Int("retries", 0, "extra attempts per failed cell (capped backoff)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight jobs on shutdown before hard cancel")

		workers        = flag.String("workers", "", "comma-separated worker base URLs; non-empty turns this daemon into a distributed coordinator that shards cells across the fleet instead of simulating locally")
		workerInflight = flag.Int("worker-inflight", 4, "coordinator mode: max cells in flight per worker")
		stealAfter     = flag.Duration("steal-after", 30*time.Second, "coordinator mode: minimum straggler age before a cell is speculatively reassigned")

		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables it")
	)
	flag.Parse()

	// Profiling endpoint: off by default, and on a separate listener so
	// enabling it never exposes profiles on the job API address.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			serve.LogStd("agrsimd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				serve.LogStd("agrsimd: pprof server: %v", err)
			}
		}()
	}

	opts := serve.Options{
		QueueDepth: *queueDepth,
		JobWorkers: *jobWorkers,
		Parallel:   *parallel,
		JournalDir: *journalDir,
		JobTimeout: *jobTimeout,
		MaxCells:   *maxCells,
		Retries:    *retries,
		Logf:       serve.LogStd,
	}
	if *cache {
		opts.CacheDir = *cacheDir
	}

	if *workers != "" {
		var urls []string
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		coord, err := dist.New(dist.Options{
			Workers:     urls,
			MaxInflight: *workerInflight,
			StealAfter:  *stealAfter,
			JournalDir:  *journalDir,
			Logf:        serve.LogStd,
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		opts.Executor = coord.Executor()
		opts.ExtraMetrics = coord.WriteMetrics
		serve.LogStd("agrsimd: coordinator mode, %d workers (%s), %d healthy",
			len(urls), *workers, coord.HealthyWorkers())
	}

	srv, err := serve.New(opts)
	if err != nil {
		return err
	}

	// Cache GC: once at boot, then hourly — a daemon's cache grows
	// without bound otherwise.
	if c := srv.Manager().Cache(); c != nil && (*cacheGC > 0 || *cacheMax > 0) {
		gc := func() {
			n, err := c.Prune(*cacheMax, *cacheGC)
			if err != nil {
				serve.LogStd("agrsimd: cache gc: %v", err)
			} else if n > 0 {
				serve.LogStd("agrsimd: cache gc evicted %d entries", n)
			}
		}
		gc()
		ticker := time.NewTicker(time.Hour)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				gc()
			}
		}()
	}

	shutdown := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		serve.LogStd("agrsimd: %v received, draining (timeout %v)", sig, *drainTimeout)
		close(shutdown)
		signal.Stop(sigc) // a second signal kills the process the hard way
	}()

	serve.LogStd("agrsimd: serving on %s (queue %d, job workers %d, cache %q, journal %q)",
		*addr, *queueDepth, *jobWorkers, opts.CacheDir, opts.JournalDir)
	return srv.ListenAndServe(*addr, shutdown, *drainTimeout)
}

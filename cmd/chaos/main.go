// Command chaos sweeps a fault axis and prints the degradation curves
// of all three protocols side by side — the robustness companion to
// cmd/figures. The interesting comparison is AGFW's network-layer ACK:
// the paper adds it (§3.2) because broadcast forwarding forfeits
// 802.11's per-frame ARQ, and these curves show what it buys back under
// adversarial relays and bursty channels:
//
//	chaos -axis greyhole -values 0,0.1,0.2,0.3
//	chaos -axis blackhole -values 0,0.1,0.2
//	chaos -axis burst -values 0,0.3,0.6,0.9
//	chaos -axis sigma -values 0,10,25,50
//	chaos -axis bogus -values 0,0.1,0.2,0.3 -defense all
//	chaos -axis ackspoof -values 0,0.1,0.2 -defense authack
//	chaos -axis flood -values 0,0.1,0.2 -rate 40 -defense revoke
//
// Axes: greyhole/blackhole turn that fraction of nodes adversarial
// (greyholes drop relayed data with p=0.5, blackholes always); burst
// drives the bad-state loss probability of a Gilbert–Elliott channel;
// sigma adds Gaussian GPS error (meters) to every advertised position.
// The active-adversary axes take an attacker fraction: bogus makes that
// fraction forge lured beacon positions and sinkhole captured traffic,
// ackspoof makes them forge network-layer acknowledgments for overheard
// AGFW data, flood makes each barrage -rate junk hellos per second.
//
// -defense selects the defense column(s) of the CSV: off (the parity
// baseline), on (trust-aware relaying, EXPERIMENTS.md E12), revoke
// (trust + t-of-n pseudonym escrow, so standings survive rotation),
// authack (per-hop MAC-authenticated acks sealed in the trapdoor), or
// the bundles both (off+on) and all (every stack, E14's comparison).
// Escrow needs rotating pseudonyms and authenticated acks need the
// network-layer ACK, so the revoke column covers the AGFW stacks only
// and the authack column AGFW proper only — rows for incompatible
// protocols are omitted rather than silently downgraded.
//
// Cells run on the internal/exp orchestrator (-parallel, -cache,
// -progress, -retries as in cmd/sweep); protocols share seeds per cell
// so they face identical placements, flows, and fault draws. Chaos
// stresses the routing layer only — the LBS query-serving workload
// (internal/lbs) has its own sweeper, cmd/lbsbench.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"anongeo"
	"anongeo/internal/core"
	"anongeo/internal/exp"
)

var protocols = []anongeo.Protocol{anongeo.ProtoGPSR, anongeo.ProtoAGFW, anongeo.ProtoAGFWNoAck}

// defenseStack is one defense column of the output: a named combination
// of the trust, escrow-revocation, and authenticated-ack knobs.
type defenseStack struct {
	name                string
	trust, revoke, auth bool
}

var stacks = map[string]defenseStack{
	"off":     {name: "off"},
	"on":      {name: "trust", trust: true},
	"revoke":  {name: "revoke", trust: true, revoke: true},
	"authack": {name: "authack", auth: true},
}

// defenseColumns resolves the -defense flag into the stacks to sweep.
func defenseColumns(mode string) ([]defenseStack, error) {
	switch mode {
	case "both":
		return []defenseStack{stacks["off"], stacks["on"]}, nil
	case "all":
		return []defenseStack{stacks["off"], stacks["on"], stacks["revoke"], stacks["authack"]}, nil
	default:
		st, ok := stacks[mode]
		if !ok {
			return nil, fmt.Errorf("field defense: value %q: want off | on | revoke | authack | both | all", mode)
		}
		return []defenseStack{st}, nil
	}
}

// protocolsFor returns the protocols a defense stack can legally arm
// (core.Config.Validate rejects the rest): escrow needs rotating
// pseudonyms, authenticated acks need the network-layer ACK.
func protocolsFor(st defenseStack) []anongeo.Protocol {
	switch {
	case st.auth:
		return []anongeo.Protocol{anongeo.ProtoAGFW}
	case st.revoke:
		return []anongeo.Protocol{anongeo.ProtoAGFW, anongeo.ProtoAGFWNoAck}
	default:
		return protocols
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	var (
		axis     = fs.String("axis", "greyhole", "fault axis: greyhole | blackhole | burst | sigma | bogus | ackspoof | flood (the LBS query-serving workload has its own sweeper, cmd/lbsbench)")
		values   = fs.String("values", "0,0.1,0.2,0.3", "comma-separated axis values")
		nodes    = fs.Int("nodes", 50, "node count")
		duration = fs.Duration("duration", 300*time.Second, "simulated time per cell")
		repeats  = fs.Int("repeats", 1, "seeds per cell (averaged)")
		seed     = fs.Int64("seed", 1, "base seed")
		defense  = fs.String("defense", "off", "defense column(s): off | on | revoke | authack | both | all")
		rate     = fs.Float64("rate", 40, "flood axis: junk hellos per attacker per second")
		loss     = fs.Float64("loss", 0, "Bernoulli frame-loss rate layered under the axis (E14's lossy-channel ackspoof scenario)")
		parallel = fs.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		cache    = fs.Bool("cache", false, "memoize cell results under "+exp.DefaultCacheDir+"/")
		progress = fs.String("progress", "off", "run telemetry to stderr: off | stderr | jsonl")
		retries  = fs.Int("retries", 0, "extra attempts per failed cell (capped backoff)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	defenses, err := defenseColumns(*defense)
	if err != nil {
		return err
	}

	base := anongeo.DefaultConfig()
	base.Nodes = *nodes
	base.Duration = *duration
	base.PacketInterval = 300 * time.Millisecond
	base.LossRate = *loss
	if *repeats < 1 {
		*repeats = 1
	}

	// One cell per (axis value, defense, protocol, repeat), in that
	// nesting order; the orchestrator returns outcomes in input order, so
	// the aggregation below is position-based.
	var (
		cells []exp.Cell[anongeo.Config]
		raws  []string
	)
	for _, raw := range strings.Split(*values, ",") {
		raw = strings.TrimSpace(raw)
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("axis value %q: %w", raw, err)
		}
		raws = append(raws, raw)
		for _, st := range defenses {
			for _, proto := range protocolsFor(st) {
				for rep := 0; rep < *repeats; rep++ {
					cfg := base
					cfg.Protocol = proto
					cfg.Seed = *seed + int64(rep)
					cfg.TrustRelay = st.trust
					cfg.AuthAck = st.auth
					if st.revoke {
						rc := anongeo.DefaultRevocationConfig()
						cfg.Revocation = &rc
					}
					if err := applyFaultAxis(&cfg, *axis, v, *rate); err != nil {
						return err
					}
					cells = append(cells, exp.Cell[anongeo.Config]{
						Label:  fmt.Sprintf("%s=%s/defense=%s/%v/rep %d", *axis, raw, st.name, proto, rep),
						Config: cfg,
					})
				}
			}
		}
	}

	opt := core.SweepOptions{Parallel: *parallel, Retries: *retries}
	if *cache {
		opt.CacheDir = exp.DefaultCacheDir
	}
	hook, err := exp.HookForMode(*progress)
	if err != nil {
		return err
	}
	if hook != nil {
		opt.Hooks = append(opt.Hooks, hook)
	}
	orch, err := core.NewOrchestrator(opt)
	if err != nil {
		return err
	}
	outs, err := orch.Execute(cells)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "axis,%s,defense,protocol,sent,delivered,pdf,avg_latency_ms,dropped,in_flight,adversary_drops,spoof_settles,quarantines,fading_losses,jam_losses,bad_macs,tag_rejects,openings\n", *axis)
	i := 0
	for _, raw := range raws {
		for _, st := range defenses {
			for _, proto := range protocolsFor(st) {
				var sent, delivered, dropped, inflight, adv, spoof, quar, fading, jam, badmac, tagrej, open int
				var lat float64
				for rep := 0; rep < *repeats; rep++ {
					r := outs[i].Value
					i++
					sent += r.Summary.Sent
					delivered += r.Summary.Delivered
					dropped += r.Summary.DroppedPackets
					inflight += r.Summary.InFlight
					adv += r.AGFW.AdversaryDrops + r.GPSR.AdversaryDrops
					spoof += r.AGFW.SpoofSettles
					quar += r.AGFW.TrustQuarantines + r.GPSR.TrustQuarantines
					fading += r.Channel.FadingLosses
					jam += r.Channel.JamLosses
					badmac += r.AGFW.AuthAcksBadMAC
					tagrej += r.AGFW.TagRejects
					open += r.Revocation.Openings
					lat += float64(r.Summary.AvgLatency) / 1e6
				}
				pdf := 0.0
				if sent > 0 {
					pdf = float64(delivered) / float64(sent)
				}
				fmt.Fprintf(out, "%s,%s,%s,%v,%d,%d,%.4f,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
					*axis, raw, st.name, proto, sent, delivered, pdf, lat/float64(*repeats),
					dropped, inflight, adv, spoof, quar, fading, jam, badmac, tagrej, open)
			}
		}
	}
	return nil
}

// applyFaultAxis attaches the fault plan the axis value describes.
func applyFaultAxis(cfg *anongeo.Config, axis string, v, floodRate float64) error {
	switch axis {
	case "greyhole":
		if v > 0 {
			cfg.Faults = &anongeo.FaultPlan{Entries: []anongeo.FaultEntry{
				{Kind: anongeo.FaultGreyhole, Fraction: v, P: 0.5},
			}}
		}
	case "blackhole":
		if v > 0 {
			cfg.Faults = &anongeo.FaultPlan{Entries: []anongeo.FaultEntry{
				{Kind: anongeo.FaultBlackhole, Fraction: v},
			}}
		}
	case "burst":
		if v > 0 {
			cfg.Faults = &anongeo.FaultPlan{Entries: []anongeo.FaultEntry{
				{Kind: anongeo.FaultGilbertElliott, PGood: 0.01, PBad: v,
					MeanGood: 5 * time.Second, MeanBad: 500 * time.Millisecond},
			}}
		}
	case "sigma":
		if v > 0 {
			cfg.Faults = &anongeo.FaultPlan{Entries: []anongeo.FaultEntry{
				{Kind: anongeo.FaultPositionError, Fraction: 1, Sigma: v},
			}}
		}
	case "bogus":
		// Position forgers with a 200 m lure, sinkholing captured traffic.
		if v > 0 {
			cfg.Faults = &anongeo.FaultPlan{Entries: []anongeo.FaultEntry{
				{Kind: anongeo.FaultBogusBeacon, Fraction: v, P: 1},
			}}
		}
	case "ackspoof":
		if v > 0 {
			cfg.Faults = &anongeo.FaultPlan{Entries: []anongeo.FaultEntry{
				{Kind: anongeo.FaultAckSpoof, Fraction: v, P: 1},
			}}
		}
	case "flood":
		if v > 0 {
			cfg.Faults = &anongeo.FaultPlan{Entries: []anongeo.FaultEntry{
				{Kind: anongeo.FaultFlood, Fraction: v, Rate: floodRate},
			}}
		}
	default:
		return fmt.Errorf("unknown axis %q", axis)
	}
	return nil
}

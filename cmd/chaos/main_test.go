package main

import (
	"strings"
	"testing"
)

// TestDefenseColumnsCSVGolden pins the CSV contract of the -defense
// sweep: the header names every column exactly once, each row carries
// exactly one field per header column, and the (value, defense,
// protocol) grid matches the documented column set — `all` emits the
// off and trust stacks for all three protocols, the revoke stack for
// the two rotating AGFW stacks, and the authack stack for AGFW proper
// only. A misaligned emit loop (the aggregation is position-based)
// would scramble rows before it broke any numeric assertion, so the
// golden grid is the real guard.
func TestDefenseColumnsCSVGolden(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-axis", "ackspoof", "-values", "0,0.2", "-defense", "all",
		"-nodes", "25", "-duration", "12s", "-seed", "3", "-parallel", "4",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")

	goldenHeader := "axis,ackspoof,defense,protocol,sent,delivered,pdf,avg_latency_ms,dropped,in_flight,adversary_drops,spoof_settles,quarantines,fading_losses,jam_losses,bad_macs,tag_rejects,openings"
	if lines[0] != goldenHeader {
		t.Errorf("header drifted:\ngot  %s\nwant %s", lines[0], goldenHeader)
	}
	goldenGrid := []string{
		"ackspoof,0,off,GPSR-Greedy",
		"ackspoof,0,off,AGFW",
		"ackspoof,0,off,AGFW-noACK",
		"ackspoof,0,trust,GPSR-Greedy",
		"ackspoof,0,trust,AGFW",
		"ackspoof,0,trust,AGFW-noACK",
		"ackspoof,0,revoke,AGFW",
		"ackspoof,0,revoke,AGFW-noACK",
		"ackspoof,0,authack,AGFW",
		"ackspoof,0.2,off,GPSR-Greedy",
		"ackspoof,0.2,off,AGFW",
		"ackspoof,0.2,off,AGFW-noACK",
		"ackspoof,0.2,trust,GPSR-Greedy",
		"ackspoof,0.2,trust,AGFW",
		"ackspoof,0.2,trust,AGFW-noACK",
		"ackspoof,0.2,revoke,AGFW",
		"ackspoof,0.2,revoke,AGFW-noACK",
		"ackspoof,0.2,authack,AGFW",
	}
	rows := lines[1:]
	if len(rows) != len(goldenGrid) {
		t.Fatalf("row count: got %d want %d\n%s", len(rows), len(goldenGrid), out.String())
	}
	cols := strings.Count(goldenHeader, ",") + 1
	for i, row := range rows {
		fields := strings.Split(row, ",")
		if len(fields) != cols {
			t.Errorf("row %d: %d fields, header has %d: %s", i, len(fields), cols, row)
			continue
		}
		if got := strings.Join(fields[:4], ","); got != goldenGrid[i] {
			t.Errorf("row %d grid: got %s want %s", i, got, goldenGrid[i])
		}
	}
}

// TestDefenseFlagRejectsUnknown keeps the flag error in the config
// layer's field+value style.
func TestDefenseFlagRejectsUnknown(t *testing.T) {
	err := run([]string{"-defense", "maximal"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), `defense: value "maximal"`) {
		t.Errorf("want field+value error for unknown defense, got %v", err)
	}
}

package anongeo_test

import (
	"strings"
	"testing"
	"time"

	"anongeo"
)

// These tests exercise the public façade end to end, the way a
// downstream user would.

func tinyConfig() anongeo.Config {
	cfg := anongeo.DefaultConfig()
	cfg.Nodes = 20
	cfg.Senders = 6
	cfg.Flows = 8
	cfg.Duration = 30 * time.Second
	return cfg
}

func TestPublicRunAGFW(t *testing.T) {
	cfg := tinyConfig()
	cfg.Protocol = anongeo.ProtoAGFW
	res, err := anongeo.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Sent == 0 || res.Summary.Delivered == 0 {
		t.Fatalf("no traffic: %+v", res.Summary)
	}
	if res.Protocol != anongeo.ProtoAGFW {
		t.Fatalf("protocol = %v", res.Protocol)
	}
}

func TestPublicBuildAndInspect(t *testing.T) {
	net, err := anongeo.Build(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Nodes) != 20 {
		t.Fatalf("nodes = %d", len(net.Nodes))
	}
	id := anongeo.NodeID(3)
	if net.Node(id) == nil {
		t.Fatalf("node %s missing", id)
	}
	loc, ok := net.Lookup(id)
	if !ok || !net.Cfg.Area.Contains(loc) {
		t.Fatalf("lookup = %v %v", loc, ok)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Sent == 0 {
		t.Fatal("no packets sent")
	}
}

func TestPublicSweepAndWriters(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 20 * time.Second
	pts, err := anongeo.DensitySweep(cfg, []int{20, 30},
		[]anongeo.Protocol{anongeo.ProtoGPSR, anongeo.ProtoAGFWNoAck})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	var table, csv strings.Builder
	if err := anongeo.WriteSweepTable(&table, pts); err != nil {
		t.Fatal(err)
	}
	if err := anongeo.WriteSweepCSV(&csv, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "AGFW-noACK") || !strings.Contains(csv.String(), "GPSR-Greedy") {
		t.Fatal("writers missing protocols")
	}
}

func TestPublicLocationServiceModes(t *testing.T) {
	cfg := tinyConfig()
	cfg.LocationService = anongeo.LSALS
	cfg.Warmup = 15 * time.Second
	cfg.Duration = 45 * time.Second
	net, err := anongeo.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if net.LSStats().Updates == 0 {
		t.Fatal("LS overlay idle via public API")
	}
}

func TestPaperNodeCounts(t *testing.T) {
	if len(anongeo.PaperNodeCounts) == 0 || anongeo.PaperNodeCounts[0] != 50 {
		t.Fatalf("PaperNodeCounts = %v", anongeo.PaperNodeCounts)
	}
}

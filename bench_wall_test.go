// Wall-clock throughput of the whole simulator, as a go-test benchmark.
// Unlike bench_test.go (whose metrics are the paper's figures), here the
// time per op IS the result: one op is one complete Figure 1(a) N=150
// GPSR run, and sim-s/wall-s reports how much simulated time one
// wall-clock second buys on each hot path. The committed BENCH_core.json
// (from `go run ./cmd/bench`) tracks the same quantity with parity
// checking and min-of-reps noise control.
package anongeo_test

import (
	"testing"
	"time"

	"anongeo"
)

func benchThroughput(b *testing.B, brute bool) {
	cfg := benchConfig(anongeo.ProtoGPSR, 150, 1)
	cfg.BruteForceRadio = brute
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := anongeo.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	wall := time.Since(start).Seconds()
	b.ReportMetric(cfg.Duration.Seconds()*float64(b.N)/wall, "sim-s/wall-s")
}

func BenchmarkEngineThroughput(b *testing.B) {
	b.Run("indexed", func(b *testing.B) { benchThroughput(b, false) })
	b.Run("brute", func(b *testing.B) { benchThroughput(b, true) })
}

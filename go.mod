module anongeo

go 1.22

// Authenticated ANT walkthrough (§3.1.2): nodes exchange genuinely
// ring-signed hello messages — each beacon proves "an authorized node
// sent this" while hiding which of k+1 ring members signed — and a
// certificate-less attacker's spoofed hellos are rejected before they
// can poison anyone's neighbor table.
//
//	go run ./examples/authenticatedant
package main

import (
	"fmt"
	"log"
	"math/rand"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/neighbor"
	"anongeo/internal/sim"
)

func main() {
	// A certification authority provisions five legitimate nodes.
	ca, err := anoncrypto.NewCA(1024)
	if err != nil {
		log.Fatal(err)
	}
	names := []anoncrypto.Identity{"alice", "bob", "carol", "dave", "erin"}
	keys := map[anoncrypto.Identity]*anoncrypto.KeyPair{}
	var certs []*anoncrypto.Cert
	for _, n := range names {
		kp, err := anoncrypto.GenerateKeyPair(n, anoncrypto.DefaultKeyBits)
		if err != nil {
			log.Fatal(err)
		}
		cert, err := ca.Issue(kp)
		if err != nil {
			log.Fatal(err)
		}
		keys[n] = kp
		certs = append(certs, cert)
	}
	fmt.Printf("CA issued %d certificates (RSA-%d)\n\n", len(certs), anoncrypto.DefaultKeyBits)

	// Alice signs a hello with k = 3 decoys.
	rng := rand.New(rand.NewSource(42))
	signer := neighbor.NewSigner(keys["alice"], certs[0], certs[1:], rng)
	pm := neighbor.NewPseudonymMemory("alice", rng, 2)
	hello := neighbor.Hello{N: pm.Current(), Loc: geo.Pt(740, 150), TS: 30 * sim.Second}

	const k = 3
	ah, err := signer.Sign(hello, k, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice's hello: pseudonym %s at %v\n", hello.N, hello.Loc)
	fmt.Printf("ring (%d members, alice hidden among them):", len(ah.Ring))
	for _, c := range ah.Ring {
		fmt.Printf(" %s", c.Subject)
	}
	fmt.Printf("\non-air size: %d B with serial references (vs %d B plain, %d B attaching certs)\n\n",
		ah.WireSize(), 23, neighbor.EstimateAuthHelloBytes(k, anoncrypto.DefaultKeyBits, true))

	// Bob verifies: the hello is authentic, with (k+1)-anonymity.
	verifier := neighbor.NewVerifier(ca.PublicKey())
	anonSet, err := verifier.Verify(ah)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob verified the hello: sender is one of %d authorized nodes — but which\n", anonSet)
	fmt.Printf("one is cryptographically hidden (ring signature signer-ambiguity)\n\n")

	// Mallory has no CA certificate. She forges one and tries anyway.
	mallory, err := anoncrypto.GenerateKeyPair("mallory", anoncrypto.DefaultKeyBits)
	if err != nil {
		log.Fatal(err)
	}
	forged := certs[1].Clone()
	forged.Subject = "mallory"
	forged.PublicKey = mallory.Public()
	attacker := neighbor.NewSigner(mallory, forged, certs, rng)
	spoofed, err := attacker.Sign(neighbor.Hello{N: pm.Rotate(), Loc: geo.Pt(1, 1)}, k, false)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := verifier.Verify(spoofed); err != nil {
		fmt.Printf("mallory's spoofed hello rejected: %v\n", err)
	} else {
		log.Fatal("spoofed hello accepted — broken!")
	}

	// Tampering with an authentic hello's position also fails.
	ah.Hello.Loc = geo.Pt(0, 0)
	if _, err := verifier.Verify(ah); err != nil {
		fmt.Println("tampered position on an authentic hello rejected too")
	} else {
		log.Fatal("tampered hello accepted — broken!")
	}

	fmt.Println("\nTrade-off (§4): larger rings mean stronger anonymity but more bytes")
	fmt.Println("and more public-key operations per hello:")
	fmt.Println("k\tanonymity\tbytes(ref)\tbytes(attach)")
	for _, kk := range []int{1, 2, 4} {
		fmt.Printf("%d\t%d\t%d\t%d\n", kk, kk+1,
			neighbor.EstimateAuthHelloBytes(kk, anoncrypto.DefaultKeyBits, false),
			neighbor.EstimateAuthHelloBytes(kk, anoncrypto.DefaultKeyBits, true))
	}
}

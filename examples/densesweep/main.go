// Density sweep: a reduced-scale rerun of the paper's Figure 1 — the
// three protocol curves (GPSR-Greedy, AGFW, AGFW-noACK) across node
// densities — printed as a table. The full-scale 900 s version lives in
// cmd/figures.
//
//	go run ./examples/densesweep
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"anongeo"
)

func main() {
	cfg := anongeo.DefaultConfig()
	cfg.Duration = 90 * time.Second
	cfg.PacketInterval = 300 * time.Millisecond

	fmt.Println("Figure 1 at reduced scale (90 s per cell; see cmd/figures for 900 s):")
	pts, err := anongeo.DensitySweep(cfg, []int{50, 100, 150},
		[]anongeo.Protocol{anongeo.ProtoGPSR, anongeo.ProtoAGFW, anongeo.ProtoAGFWNoAck})
	if err != nil {
		log.Fatal(err)
	}
	if err := anongeo.WriteSweepTable(os.Stdout, pts); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nWhat to look for (the paper's claims):")
	fmt.Println("  1a. AGFW-noACK delivers least and worsens with density (broadcast")
	fmt.Println("      collisions, no retransmission); AGFW tracks GPSR-Greedy closely.")
	fmt.Println("  1b. latency is comparable at modest density; at high density GPSR's")
	fmt.Println("      RTS/CTS handshakes back off and retry, and its latency climbs")
	fmt.Println("      while AGFW's broadcasts stay flat.")
}

// Location service walkthrough: run the same update/query traffic
// through plain DLM and through the paper's Anonymous Location Service
// (ALS, Algorithm 3.3) in both its indexed and no-index variants, and
// show what a compromised location server learns in each case.
//
//	go run ./examples/locationservice
package main

import (
	"crypto/rsa"
	"fmt"
	"log"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/locservice"
	"anongeo/internal/sim"
)

func main() {
	// The network area is divided into 300 m grids; ssa(id) maps each
	// identity to its home grid, exactly as in DLM.
	grid := geo.NewGridMap(geo.NewRect(1500, 300), 300)
	ssa := locservice.NewServerSelection(grid, 2)

	// Alice updates her location; Bob will query it. Carol runs the
	// location server for Alice's home grid — and is curious.
	keys := map[anoncrypto.Identity]*anoncrypto.KeyPair{}
	for _, id := range []anoncrypto.Identity{"alice", "bob", "carol"} {
		kp, err := anoncrypto.GenerateKeyPair(id, anoncrypto.DefaultKeyBits)
		if err != nil {
			log.Fatal(err)
		}
		keys[id] = kp
	}
	dir := func(id anoncrypto.Identity) (*rsa.PublicKey, bool) {
		kp, ok := keys[id]
		if !ok {
			return nil, false
		}
		return kp.Public(), true
	}

	aliceLoc := geo.Pt(740, 160)
	now := sim.Time(42 * sim.Second)
	fmt.Printf("alice is at %v; her home grids are %v\n\n", aliceLoc, ssa.HomeCells("alice"))

	// --- Plain DLM: the baseline with no privacy. -----------------------
	plain := locservice.NewPlainServer(60 * sim.Second)
	plain.Update("alice", aliceLoc, now)
	loc, ok := plain.Lookup("alice", now)
	fmt.Println("== plain DLM")
	fmt.Printf("   bob's query answered: %v at %v\n", ok, loc)
	fmt.Printf("   what server carol learned: %v\n", plain.Records(now))
	fmt.Printf("   update size %d B, query %d B, reply %d B\n\n",
		locservice.PlainUpdateBytes(), locservice.PlainQueryBytes(), locservice.PlainReplyBytes())

	// --- ALS, indexed (Algorithm 3.3). ----------------------------------
	srv := locservice.NewServer(60 * sim.Second)
	up := locservice.Updater{Self: *keys["alice"], SSA: ssa, Directory: dir}
	updates, err := up.BuildUpdates([]anoncrypto.Identity{"bob"}, aliceLoc, now)
	if err != nil {
		log.Fatal(err)
	}
	for cell, us := range updates {
		for _, u := range us {
			srv.Apply(u, now)
			fmt.Printf("== ALS: stored at grid %v: index E_KB(A,B) (64 B), sealed loc (64 B)\n", cell)
		}
	}
	req := locservice.Requester{Self: keys["bob"], SSA: ssa, Directory: dir}
	q, cell, err := req.BuildQuery("alice", geo.Pt(100, 100))
	if err != nil {
		log.Fatal(err)
	}
	rep, ok := srv.Answer(q, now)
	if !ok {
		log.Fatal("ALS: server found no record")
	}
	gotLoc, ts, ok := req.OpenReply(rep, "alice")
	fmt.Printf("   bob queried grid %v by opaque index — no identity sent\n", cell)
	fmt.Printf("   bob recovered: %v at %v (ts %v, %v)\n", ok, gotLoc, ts, ok)
	fmt.Printf("   what the server learned: an index it cannot invert and ciphertext\n")
	fmt.Printf("   update %d B, query %d B, reply %d B, decrypts by bob: %d\n\n",
		locservice.UpdateBytes(), locservice.QueryBytes(), rep.ReplyBytes(), req.DecryptAttempts)

	// A stranger who was not anticipated by alice gets nothing.
	stranger := locservice.Requester{Self: keys["carol"], SSA: ssa, Directory: dir}
	sq, _, err := stranger.BuildQuery("alice", geo.Pt(0, 0))
	if err != nil {
		log.Fatal(err)
	}
	if _, ok := srv.Answer(sq, now); ok {
		log.Fatal("stranger's index matched — broken")
	}
	fmt.Println("   carol (unanticipated) queried too: index matched nothing (§3.3 limitation)")

	// --- ALS, no-index variant. -----------------------------------------
	req2 := locservice.Requester{Self: keys["bob"], SSA: ssa, Directory: dir}
	scanQ, _ := req2.BuildScanQuery("alice", geo.Pt(100, 100))
	scanRep := srv.AnswerScan(scanQ, now)
	_, _, ok = req2.OpenReply(scanRep, "alice")
	fmt.Println("\n== ALS, no-index alternative (resists index enumeration)")
	fmt.Printf("   bob sent only a reply location (%d B); server returned the whole bucket\n",
		locservice.ScanQueryBytes())
	fmt.Printf("   recovered: %v; reply %d B, trial decrypts: %d\n",
		ok, scanRep.ReplyBytes(), req2.DecryptAttempts)
	fmt.Println("\nTrade-off: the indexed variant is O(1) but its fixed index block can be")
	fmt.Println("enumerated by an attacker holding certificates; the scan variant hides")
	fmt.Println("which record was wanted at linear bandwidth and decryption cost.")
}

// Fault tolerance: stress the anonymous routing scheme with the two
// failure models the simulator injects — random per-frame fading loss
// and node churn (radios going dark mid-run) — and compare how AGFW's
// network-layer ACK, the plain broadcast variant, and GPSR's MAC-level
// ARQ cope.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"anongeo"
)

func main() {
	run := func(proto anongeo.Protocol, loss float64, churn int) anongeo.Result {
		cfg := anongeo.DefaultConfig()
		cfg.Duration = 120 * time.Second
		cfg.PacketInterval = 300 * time.Millisecond
		cfg.Protocol = proto
		cfg.LossRate = loss
		cfg.ChurnFailures = churn
		cfg.ChurnDownFor = 25 * time.Second
		res, err := anongeo.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	protos := []anongeo.Protocol{anongeo.ProtoGPSR, anongeo.ProtoAGFW, anongeo.ProtoAGFWNoAck}

	fmt.Println("Fading loss (independent per-frame loss probability):")
	fmt.Println("protocol      0%      10%     20%")
	for _, p := range protos {
		fmt.Printf("%-12s", p)
		for _, loss := range []float64{0, 0.10, 0.20} {
			fmt.Printf("  %.3f", run(p, loss, 0).Summary.DeliveryFraction)
		}
		fmt.Println()
	}

	fmt.Println("\nNode churn (random radios dark for 25 s each):")
	fmt.Println("protocol      0 fail  10 fail 20 fail")
	for _, p := range protos {
		fmt.Printf("%-12s", p)
		for _, churn := range []int{0, 10, 20} {
			fmt.Printf("  %.3f", run(p, 0, churn).Summary.DeliveryFraction)
		}
		fmt.Println()
	}

	fmt.Println("\nReading: AGFW's network-layer ACK and GPSR's MAC ARQ both absorb")
	fmt.Println("moderate fading; the ACK-less broadcast variant degrades linearly.")
	fmt.Println("Under churn, both protocols route around dark relays — AGFW by")
	fmt.Println("re-choosing pseudonymous next hops on retransmission, GPSR through")
	fmt.Println("MAC-feedback neighbor eviction. GPSR is hit harder by fading: its")
	fmt.Println("four-frame RTS/CTS/DATA/ACK exchange must survive intact.")
}

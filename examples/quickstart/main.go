// Quickstart: simulate the paper's baseline scenario — 50 mobile nodes
// in a 1500 m × 300 m area — under the anonymous geographic routing
// scheme (AGFW) and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"anongeo"
)

func main() {
	// The paper's §5.1 setup: random waypoint mobility (≤20 m/s, 60 s
	// pause), 30 CBR flows from 20 senders, 250 m radios.
	cfg := anongeo.DefaultConfig()
	cfg.Protocol = anongeo.ProtoAGFW
	cfg.Duration = 120 * time.Second // the paper runs 900 s; keep the demo snappy
	cfg.WithSniffer = true           // watch what an eavesdropper learns

	res, err := anongeo.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Anonymous geographic routing (AGFW + ANT), paper baseline:")
	fmt.Printf("  packets sent        %d\n", res.Summary.Sent)
	fmt.Printf("  delivery fraction   %.3f\n", res.Summary.DeliveryFraction)
	fmt.Printf("  avg end-to-end      %v\n", res.Summary.AvgLatency.Round(10*time.Microsecond))
	fmt.Printf("  avg hops            %.2f\n", res.Summary.AvgHops)
	fmt.Printf("  trapdoors opened    %d (tries: %d, only in the last-hop region)\n",
		res.AGFW.TrapdoorOpens, res.AGFW.TrapdoorTries)

	// The privacy headline: a global passive eavesdropper saw every
	// frame, yet learned no (identity, location) pair.
	h := res.Harvest
	fmt.Println("\nGlobal eavesdropper's harvest:")
	fmt.Printf("  identities exposed  %d\n", len(h.ByIdentity))
	fmt.Printf("  MAC addresses seen  %d\n", len(h.ByMAC))
	fmt.Printf("  one-shot pseudonyms %d (unlinkable hello names)\n", len(h.ByPseudonym))
	fmt.Printf("  data headers seen   %d (locations without identities)\n", h.TrapdoorSightings)
}

// Privacy audit: run the same network under GPSR, AGFW, and a
// misconfigured AGFW (real MAC addresses on frames), with a global
// passive eavesdropper attached, and compare what the adversary can
// reconstruct — the quantified version of the paper's §2 threat analysis
// and §4 security analysis.
//
//	go run ./examples/privacyaudit
package main

import (
	"fmt"
	"log"
	"time"

	"anongeo"
	"anongeo/internal/adversary"
	"anongeo/internal/sim"
)

func main() {
	const duration = 120 * time.Second
	target := anongeo.NodeID(0) // the node whose movements the adversary wants

	type scenario struct {
		name   string
		proto  anongeo.Protocol
		expose bool
	}
	for _, sc := range []scenario{
		{"GPSR-Greedy (baseline, privacy-free)", anongeo.ProtoGPSR, false},
		{"AGFW (anonymous geographic routing)", anongeo.ProtoAGFW, false},
		{"AGFW misconfigured (real MAC on frames, §3.2 warning)", anongeo.ProtoAGFW, true},
	} {
		cfg := anongeo.DefaultConfig()
		cfg.Duration = duration
		cfg.Protocol = sc.proto
		cfg.ExposeSenderMAC = sc.expose
		cfg.WithSniffer = true

		net, err := anongeo.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := net.Run()
		if err != nil {
			log.Fatal(err)
		}
		h := res.Harvest

		fmt.Printf("== %s\n", sc.name)
		fmt.Printf("   delivery fraction: %.3f\n", res.Summary.DeliveryFraction)
		fmt.Printf("   identities learned with locations: %d of %d nodes\n", len(h.ByIdentity), cfg.Nodes)

		// Tracking the target: how much of the run could the adversary
		// pin the target's position (each sighting valid 3 s)?
		cov := adversary.Coverage(h.ByIdentity[string(target)], sim.Time(duration), 3*sim.Second)
		fmt.Printf("   tracking coverage of %s: %.0f%%\n", target, cov*100)

		// The §3.2 MAC-linking attack: correlate successive hops of the
		// same packet to bind pseudonyms to persistent MAC addresses.
		bindings := adversary.MACLinkAttack(net.Sniffer.Observations())
		fmt.Printf("   pseudonym→MAC bindings recovered: %d\n", len(bindings))

		// Pseudonym linking: chain hello sightings by movement
		// consistency. Long tracks mean trajectories stay traceable even
		// without identities (AGFW is not route-untraceable, §4).
		tracks := adversary.LinkPseudonyms(h.ByPseudonym, adversary.DefaultLinkerConfig())
		if longest := adversary.LongestTrack(tracks); longest != nil {
			fmt.Printf("   pseudonym linker: %d tracks, longest spans %v with %d pseudonyms\n",
				len(tracks), longest.Duration().Duration().Round(time.Second), len(longest.Pseudonyms))
		} else {
			fmt.Printf("   pseudonym linker: nothing to link\n")
		}
		fmt.Println()
	}

	fmt.Println("Reading: GPSR hands the adversary every node's identity and position")
	fmt.Println("continuously; AGFW reduces the harvest to unlinkable pseudonyms and")
	fmt.Println("bare coordinates; and a single MAC-layer misconfiguration quietly")
	fmt.Println("re-identifies the anonymous traffic.")
}
